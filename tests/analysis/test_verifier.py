"""One intentionally-broken program per lint rule.

Each test builds (or mutates) a program that violates exactly one
verifier contract and asserts the specific diagnostic code, so a future
refactor of the verifier cannot silently stop catching a rule.
"""

import pytest

from repro.analysis import diagnostics as dc
from repro.analysis import (VerifierError, assert_valid, verify_compiled,
                            verify_program)
from repro.isa import P, R, ProgramBuilder
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program


def codes(diags):
    return {d.code for d in diags}


def simple_program():
    b = ProgramBuilder("ok")
    b.movi(R(1), 4)
    b.movi(R(2), 0x100)
    b.label("loop")
    b.ld(R(3), R(2), 0)
    b.add(R(4), R(3), R(1))
    b.st(R(4), R(2), 0)
    b.subi(R(1), R(1), 1)
    b.cmplti(P(1), R(1), 1)
    b.cmpeqi(P(2), P(1), 0)
    b.br("loop", pred=P(2))
    b.halt()
    b.data_word(0x100, 7)
    return b.build()


def test_clean_program_has_no_diagnostics():
    assert verify_program(simple_program()) == []


def test_assert_valid_passes_clean_program():
    assert_valid(simple_program())


# -- register liveness ------------------------------------------------------

def test_use_before_def_flags_UBD001():
    b = ProgramBuilder("ubd")
    b.add(R(1), R(5), R(5))        # r5 never defined
    b.halt()
    diags = verify_program(b.build())
    assert dc.UBD001 in codes(diags)
    (diag,) = [d for d in diags if d.code == dc.UBD001]
    assert diag.index == 0
    assert diag.is_error


def test_use_before_def_accepts_hardwired_registers():
    b = ProgramBuilder("hardwired")
    b.add(R(1), R(0), R(0))        # r0 is the hardwired zero
    b.halt()
    assert dc.UBD001 not in codes(verify_program(b.build()))


def test_dead_write_flags_DWR001_as_warning():
    b = ProgramBuilder("dwr")
    b.movi(R(1), 1)                # overwritten before any use
    b.movi(R(1), 2)
    b.halt()
    diags = verify_program(b.build())
    (diag,) = [d for d in diags if d.code == dc.DWR001]
    assert diag.index == 0
    assert not diag.is_error       # warnings never fail assert_valid
    assert_valid(b.build())


def test_no_exit_loop_flags_CFG001_as_warning():
    b = ProgramBuilder("spin")
    b.movi(R(1), 4)
    b.label("spin")
    b.subi(R(1), R(1), 1)
    b.jmp("spin")                  # unconditional back edge: no way out
    b.halt()                       # unreachable
    diags = verify_program(b.build())
    (diag,) = [d for d in diags if d.code == dc.CFG001]
    assert not diag.is_error
    assert diag.index == 1         # anchored at the loop header
    assert dc.UNR001 in codes(diags)
    assert_valid(b.build())        # warnings never fail assert_valid


def test_exiting_loop_does_not_flag_CFG001():
    assert dc.CFG001 not in codes(verify_program(simple_program()))


def test_unreachable_code_flags_UNR001():
    b = ProgramBuilder("unr")
    b.jmp("end")
    b.movi(R(1), 5)                # skipped on every path
    b.label("end")
    b.halt()
    diags = verify_program(b.build())
    (diag,) = [d for d in diags if d.code == dc.UNR001]
    assert diag.index == 1


# -- label integrity --------------------------------------------------------

def test_unknown_branch_target_flags_LBL001():
    program = simple_program()
    program.labels["elsewhere"] = program.labels.pop("loop")
    diags = verify_program(program)
    assert dc.LBL001 in codes(diags)


def test_branch_past_end_flags_LBL002():
    program = simple_program()
    program.labels["loop"] = len(program)   # end-of-program sentinel
    diags = verify_program(program)
    assert dc.LBL002 in codes(diags)


def test_label_out_of_range_flags_LBL003():
    program = simple_program()
    program.labels["loop"] = 999
    diags = verify_program(program)
    assert dc.LBL003 in codes(diags)


def test_assert_valid_raises_with_diagnostics():
    program = simple_program()
    program.labels["loop"] = 999
    with pytest.raises(VerifierError) as exc_info:
        assert_valid(program)
    assert any(d.code == dc.LBL003 for d in exc_info.value.diagnostics)


# -- memory image -----------------------------------------------------------

def test_misaligned_memory_image_flags_MEM001():
    program = simple_program()
    program.memory_image[0x102] = 9         # not word aligned
    diags = verify_program(program)
    assert dc.MEM001 in codes(diags)


# -- RESTART legality -------------------------------------------------------

def test_orphan_restart_no_producer_flags_RST001():
    program = Program("orphan", [
        Instruction(Opcode.RESTART, (), (R(2),)),   # r2 never defined
        Instruction(Opcode.HALT),
    ], {})
    diags = verify_program(program)
    assert dc.RST001 in codes(diags)


def test_restart_fed_by_non_load_flags_RST001():
    program = Program("nonload", [
        Instruction(Opcode.MOVI, (R(1),), (), imm=5),
        Instruction(Opcode.RESTART, (), (R(1),)),
        Instruction(Opcode.HALT),
    ], {})
    diags = verify_program(program)
    (diag,) = [d for d in diags if d.code == dc.RST001]
    assert diag.index == 1


def test_restart_wrong_shape_flags_RST002():
    program = Program("shape", [
        Instruction(Opcode.RESTART, (), ()),        # no operand
        Instruction(Opcode.HALT),
    ], {})
    diags = verify_program(program)
    assert dc.RST002 in codes(diags)


def test_restart_on_uncritical_load_flags_RST003():
    program = Program("uncritical", [
        Instruction(Opcode.MOVI, (R(1),), (), imm=0x100),
        Instruction(Opcode.LD, (R(2),), (R(1),), imm=0),
        Instruction(Opcode.RESTART, (), (R(2),)),
        Instruction(Opcode.HALT),
    ], {}, memory_image={0x100: 1})
    diags = verify_program(program)
    (diag,) = [d for d in diags if d.code == dc.RST003]
    assert diag.index == 2


def _chase_program(extra_restart):
    """mcf-style pointer chase with RESTART slot(s) on the chase load."""
    b = ProgramBuilder("chase")
    b.movi(R(1), 0x1000)
    b.movi(R(2), 0)
    b.movi(R(3), 10)
    b.label("loop")
    b.ld(R(1), R(1), 0)            # 3: critical recurrence load
    b.restart(R(1))                # 4: legal coverage
    if extra_restart:
        b.restart(R(1))            # 5: adds nothing
    b.ld(R(4), R(1), 4)
    b.mul(R(5), R(4), R(4))
    b.add(R(2), R(2), R(5))
    b.subi(R(3), R(3), 1)
    b.cmplti(P(1), R(3), 1)
    b.cmpeqi(P(2), P(1), 0)
    b.br("loop", pred=P(2))
    b.halt()
    for i in range(16):
        b.data_word(0x1000 + i * 8, 0x1000 + ((i + 1) % 16) * 8)
        b.data_word(0x1000 + i * 8 + 4, i)
    return b.build()


def test_single_restart_on_critical_load_is_clean():
    diags = verify_program(_chase_program(extra_restart=False))
    assert not codes(diags) & {dc.RST001, dc.RST002, dc.RST003,
                               dc.RST004}


def test_second_restart_on_same_load_flags_RST004():
    diags = verify_program(_chase_program(extra_restart=True))
    (diag,) = [d for d in diags if d.code == dc.RST004]
    assert diag.index == 5         # the second slot, not the first
    assert not diag.is_error       # wasted slot, not an illegal program
    assert dc.RST003 not in codes(diags)
    assert_valid(_chase_program(extra_restart=True))


# -- issue-group legality ---------------------------------------------------

def _grouped(instructions):
    """Seal a hand-grouped instruction list (groups/stops preassigned)."""
    return Program("grouped", instructions, {})


def test_group_over_port_capacity_flags_GRP001():
    # Three MULDIV ops in one group on a 2-wide FP/MULDIV port model.
    program = _grouped([
        Instruction(Opcode.MUL, (R(1),), (R(0), R(0)), group=0),
        Instruction(Opcode.MUL, (R(2),), (R(0), R(0)), group=0),
        Instruction(Opcode.MUL, (R(3),), (R(0), R(0)), group=0, stop=True),
        Instruction(Opcode.HALT, group=1, stop=True),
    ])
    diags = verify_compiled(program)
    (diag,) = [d for d in diags if d.code == dc.GRP001]
    assert diag.index == 2


def test_intra_group_raw_flags_GRP002():
    program = _grouped([
        Instruction(Opcode.ADD, (R(1),), (R(0), R(0)), group=0),
        Instruction(Opcode.ADD, (R(2),), (R(1), R(0)), group=0, stop=True),
        Instruction(Opcode.HALT, group=1, stop=True),
    ])
    diags = verify_compiled(program)
    (diag,) = [d for d in diags if d.code == dc.GRP002]
    assert diag.index == 1


def test_stop_bit_inside_group_flags_GRP003():
    program = _grouped([
        Instruction(Opcode.ADD, (R(1),), (R(0), R(0)), group=0, stop=True),
        Instruction(Opcode.ADD, (R(2),), (R(0), R(0)), group=0, stop=True),
        Instruction(Opcode.HALT, group=1, stop=True),
    ])
    diags = verify_compiled(program)
    assert dc.GRP003 in codes(diags)


def test_decreasing_group_ordinals_flag_GRP003():
    program = _grouped([
        Instruction(Opcode.ADD, (R(1),), (R(0), R(0)), group=1, stop=True),
        Instruction(Opcode.ADD, (R(2),), (R(0), R(0)), group=0, stop=True),
        Instruction(Opcode.HALT, group=2, stop=True),
    ])
    diags = verify_compiled(program)
    assert dc.GRP003 in codes(diags)


# -- end to end over the compiler -------------------------------------------

def test_compiled_simple_program_verifies_cleanly():
    from repro.compiler import CompileOptions, compile_program
    compiled = compile_program(simple_program(), CompileOptions())
    assert [d for d in verify_compiled(compiled) if d.is_error] == []
