"""CFG orders and loop structure (`repro.analysis.cfg`)."""

from repro.analysis.cfg import build_cfg, loops, no_exit_loops
from repro.isa import P, ProgramBuilder, R


def diamond():
    #   b0: entry -> b1 (fallthrough) or b2 (branch)
    #   b1 -> b3, b2 -> b3, b3: halt
    b = ProgramBuilder("diamond")
    b.movi(R(1), 1)
    b.cmplti(P(1), R(1), 5)
    b.br("right", pred=P(1))
    b.movi(R(2), 2)
    b.jmp("join")
    b.label("right")
    b.movi(R(2), 3)
    b.label("join")
    b.halt()
    return b.build()


def looping(with_exit=True):
    b = ProgramBuilder("loop")
    b.movi(R(1), 4)
    b.label("loop")
    b.subi(R(1), R(1), 1)
    if with_exit:
        b.cmpnei(P(1), R(1), 0)
        b.br("loop", pred=P(1))
    else:
        b.jmp("loop")
    b.halt()
    return b.build()


def test_reachable_blocks_covers_connected_graph():
    cfg = build_cfg(diamond())
    assert sorted(cfg.reachable_blocks()) == [b.bid for b in cfg]


def test_reachable_blocks_excludes_dead_code():
    b = ProgramBuilder("dead")
    b.jmp("end")
    b.movi(R(1), 1)                 # unreachable block
    b.label("end")
    b.halt()
    cfg = build_cfg(b.build())
    reachable = set(cfg.reachable_blocks())
    dead = [blk.bid for blk in cfg if blk.bid not in reachable]
    assert len(dead) == 1
    assert cfg.blocks[dead[0]].start == 1


def test_reverse_postorder_puts_blocks_before_successors():
    cfg = build_cfg(diamond())
    order = cfg.reverse_postorder()
    position = {bid: i for i, bid in enumerate(order)}
    for block in cfg:
        for succ in block.succs:
            # Only back edges may violate the ordering; the diamond is
            # acyclic so every edge must be forward in RPO.
            assert position[block.bid] < position[succ]


def test_reverse_postorder_omits_unreachable_blocks():
    b = ProgramBuilder("dead")
    b.jmp("end")
    b.movi(R(1), 1)
    b.label("end")
    b.halt()
    cfg = build_cfg(b.build())
    assert set(cfg.reverse_postorder()) == set(cfg.reachable_blocks())


def test_loop_with_exit_detected_with_header_and_exit():
    cfg = build_cfg(looping(with_exit=True))
    (loop,) = loops(cfg)
    assert loop.has_exit
    assert loop.headers
    assert no_exit_loops(cfg) == []


def test_no_exit_loop_detected():
    cfg = build_cfg(looping(with_exit=False))
    (loop,) = no_exit_loops(cfg)
    assert not loop.has_exit


def test_unreachable_no_exit_loop_not_reported():
    b = ProgramBuilder("deadloop")
    b.halt()
    b.label("spin")                 # unreachable infinite loop
    b.jmp("spin")
    cfg = build_cfg(b.build())
    assert loops(cfg)               # the cycle exists...
    assert no_exit_loops(cfg) == []  # ...but is not entry-reachable


def test_straight_line_program_has_no_loops():
    b = ProgramBuilder("straight")
    b.movi(R(1), 1)
    b.halt()
    assert loops(build_cfg(b.build())) == []
