"""The static cycle lower bound and slack/ineffectuality report
(`repro.analysis.bounds`)."""

from repro.analysis.bounds import cycle_lower_bound, slack_report
from repro.harness import MODEL_FACTORIES, run_model
from repro.isa import P, ProgramBuilder, R, execute
from repro.resources import PortModel


def chain_trace(depth=10):
    """A pure dependence chain: r1 += 1, `depth` times."""
    b = ProgramBuilder("chain")
    b.movi(R(1), 0)
    for _ in range(depth):
        b.addi(R(1), R(1), 1)
    b.halt()
    return execute(b.build())


def wide_trace(n=24):
    """`n` independent movis: no dependence height, pure width."""
    b = ProgramBuilder("wide")
    for i in range(n):
        b.movi(R(1 + i % 8), i)
    b.halt()
    return execute(b.build())


# -- cycle_lower_bound ------------------------------------------------------

def test_dependence_chain_sets_dep_height():
    depth = 10
    bound = cycle_lower_bound(chain_trace(depth))
    # movi finishes at 1, each addi starts one cycle after the previous,
    # so the last addi starts at `depth` and the bound is depth + 1.
    assert bound.dep_height == depth + 1
    assert bound.binding == "dep_height"
    assert bound.bound == depth + 1


def test_independent_work_sets_width_bound():
    bound = cycle_lower_bound(wide_trace(24))
    assert bound.entries == 25          # 24 movis + halt
    assert bound.dep_height == 1        # all starts are cycle 0
    assert bound.width_bound == 5       # ceil(25 / 6)
    assert bound.binding == "width"
    assert bound.bound == 5


def test_memory_ports_counted_for_loads():
    b = ProgramBuilder("mem")
    b.movi(R(1), 0x100)
    for _ in range(8):
        b.ld(R(2), R(1), 0)
    b.halt()
    b.data_word(0x100, 7)
    bound = cycle_lower_bound(execute(b.build()))
    assert bound.mem_bound == 2         # ceil(8 loads / 4 M ports)
    assert bound.int_bound == 2         # ceil((0 ALU + 8 mem) / 6)


def test_custom_port_model_changes_bound_without_caching():
    trace = wide_trace(24)
    narrow = cycle_lower_bound(trace, PortModel(width=1))
    assert narrow.width_bound == 25
    # The narrow result must not poison the default-port cache.
    assert cycle_lower_bound(trace).width_bound == 5


def test_bound_cached_on_trace():
    trace = chain_trace(4)
    first = cycle_lower_bound(trace)
    assert cycle_lower_bound(trace) is first
    assert trace._cycle_bound is first


def test_to_dict_has_all_components():
    doc = cycle_lower_bound(chain_trace(3)).to_dict()
    assert set(doc) == {"entries", "dep_height", "width_bound",
                        "mem_bound", "int_bound", "fp_bound", "br_bound",
                        "bound", "binding"}


def test_bound_below_every_model_on_hand_program():
    b = ProgramBuilder("mix")
    b.movi(R(1), 0x100)
    b.movi(R(2), 3)
    b.label("loop")
    b.ld(R(3), R(1), 0)
    b.add(R(4), R(3), R(2))
    b.st(R(4), R(1), 0)
    b.subi(R(2), R(2), 1)
    b.cmpnei(P(1), R(2), 0)
    b.br("loop", pred=P(1))
    b.halt()
    b.data_word(0x100, 7)
    trace = execute(b.build())
    bound = cycle_lower_bound(trace).bound
    for model in sorted(MODEL_FACTORIES):
        cycles = run_model(model, trace).cycles
        assert bound <= cycles, (model, bound, cycles)


# -- slack_report -----------------------------------------------------------

def test_critical_chain_has_zero_slack():
    report = slack_report(chain_trace(6))
    by_pc = {row.pc: row for row in report.rows}
    # Every addi sits on the critical path: zero slack, all critical.
    for pc in range(1, 7):
        assert by_pc[pc].min_slack == 0
        assert by_pc[pc].critical == by_pc[pc].executed


def test_overwritten_unread_value_is_ineffectual():
    b = ProgramBuilder("dead")
    b.movi(R(9), 1)                 # overwritten before any read
    b.movi(R(9), 2)                 # last writer: effectual
    b.halt()
    report = slack_report(execute(b.build()))
    by_pc = {row.pc: row for row in report.rows}
    assert by_pc[0].ineffectual == 1
    assert by_pc[1].ineffectual == 0
    assert report.ineffectual_total == 1


def test_nullified_predicate_chain_is_effectual():
    b = ProgramBuilder("nullified")
    b.movi(R(1), 0)                     # 0
    b.cmpnei(P(1), R(1), 0)             # 1: p1 = False
    b.addi(R(2), R(1), 1, pred=P(1))    # 2: nullified
    b.cmpnei(P(1), R(1), 5)             # 3: overwrites p1 (last writer)
    b.halt()                            # 4
    report = slack_report(execute(b.build()))
    by_pc = {row.pc: row for row in report.rows}
    # The first compare feeds only the nullified slot, and p1's final
    # value comes from pc 3 — yet deciding the nullification is an
    # observable effect, so pc 1 must not be flagged droppable.
    assert by_pc[1].ineffectual == 0
    # The nullified slot itself is counted but never "executed".
    assert by_pc[2].count == 1
    assert by_pc[2].executed == 0


def test_report_shapes_and_render():
    trace = chain_trace(3)
    report = slack_report(trace)
    doc = report.to_dict()
    assert set(doc) == {"bound", "executed", "ineffectual", "rows"}
    assert doc["bound"]["bound"] == report.bound.bound
    assert len(doc["rows"]) == len(report.rows)
    text = report.render(limit=2)
    assert "dependence-height bound" in text
    assert "more static" in text        # 5 static pcs, limit 2
