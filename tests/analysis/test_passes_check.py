"""Stage-by-stage checked compilation: def-use and state contracts."""

import dataclasses

import pytest

from repro.analysis import passes_check as pc
from repro.analysis import diagnostics as dc
from repro.analysis.passes_check import (PassCheckError, checked_compile,
                                         defuse_edges)
from repro.compiler import CompileOptions
from repro.isa import Opcode, P, ProgramBuilder, R
from repro.isa.program import Program
from repro.workloads import build_workload


def chase_program():
    """mcf-style pointer chase whose recurrence earns a RESTART."""
    b = ProgramBuilder("chase")
    b.movi(R(1), 0x1000)
    b.movi(R(2), 0)
    b.movi(R(3), 10)
    b.label("loop")
    b.ld(R(1), R(1), 0)               # node = node->next  (critical SCC)
    b.ld(R(4), R(1), 4)
    b.mul(R(5), R(4), R(4))           # expensive downstream work
    b.mul(R(6), R(5), R(4))
    b.add(R(2), R(2), R(6))
    b.subi(R(3), R(3), 1)
    b.cmplti(P(1), R(3), 1)
    b.cmpeqi(P(2), P(1), 0)
    b.br("loop", pred=P(2))
    b.halt()
    for i in range(16):
        b.data_word(0x1000 + i * 8, 0x1000 + ((i + 1) % 16) * 8)
        b.data_word(0x1000 + i * 8 + 4, i)
    return b.build()


def stage_names(reports):
    return [r.stage for r in reports]


def test_checked_compile_runs_all_stages_clean():
    compiled, reports = checked_compile(chase_program())
    assert stage_names(reports) == [
        "input", "list_schedule", "insert_restarts", "form_issue_groups"]
    assert all(r.ok for r in reports)
    assert compiled.restart_count() >= 1


def test_checked_compile_counts_restart_edges():
    compiled, reports = checked_compile(chase_program())
    (restart_report,) = [r for r in reports if r.stage == "insert_restarts"]
    assert restart_report.new_edges == compiled.restart_count() >= 1


def test_checked_compile_on_workload_with_execute_check():
    program = build_workload("vpr", scale=0.05, verify=False)
    _, reports = checked_compile(program, execute_check=True)
    assert all(r.ok for r in reports)


def test_checked_compile_with_if_conversion():
    program = build_workload("twolf", scale=0.05, verify=False)
    opts = CompileOptions(if_conversion=True)
    _, reports = checked_compile(program, opts, execute_check=True)
    assert "if_convert" in stage_names(reports)
    assert all(r.ok for r in reports)


def test_defuse_edges_ignore_order_but_not_operands():
    program = chase_program()
    scheduled, _ = checked_compile(
        program, CompileOptions(restarts=False))
    # Scheduling alone must preserve the def-use multiset exactly.
    assert defuse_edges(program) == defuse_edges(scheduled)


def _reseal(prog, instructions=None, memory_image=None):
    return Program(
        prog.name,
        [dataclasses.replace(i) for i in (instructions or prog)],
        dict(prog.labels),
        memory_image=dict(memory_image
                          if memory_image is not None
                          else prog.memory_image),
    )


def test_tampered_scheduler_is_caught_by_defuse_diff(monkeypatch):
    real = pc.list_schedule

    def tampered(prog, ports):
        out = real(prog, ports)
        insts = [dataclasses.replace(i) for i in out]
        victim = next(i for i in insts
                      if i.opcode is Opcode.MUL and len(set(i.srcs)) == 2)
        victim.srcs = (victim.srcs[1], victim.srcs[0])
        return _reseal(out, instructions=insts)

    monkeypatch.setattr(pc, "list_schedule", tampered)
    with pytest.raises(PassCheckError) as exc_info:
        checked_compile(chase_program())
    assert exc_info.value.stage == "list_schedule"
    assert any(d.code == dc.PCH001 for d in exc_info.value.diagnostics)


def test_tampered_memory_image_is_caught_by_state_check(monkeypatch):
    real = pc.list_schedule

    def tampered(prog, ports):
        out = real(prog, ports)
        image = dict(out.memory_image)
        image[0x7F00] = 99               # def-use graph is untouched
        return _reseal(out, memory_image=image)

    monkeypatch.setattr(pc, "list_schedule", tampered)
    with pytest.raises(PassCheckError) as exc_info:
        checked_compile(chase_program(), execute_check=True)
    assert exc_info.value.stage == "list_schedule"
    assert any(d.code == dc.PCH002 for d in exc_info.value.diagnostics)
