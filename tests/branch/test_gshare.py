"""Unit tests for the gshare predictor."""

import random

import pytest

from repro.branch import GsharePredictor


def test_power_of_two_required():
    with pytest.raises(ValueError):
        GsharePredictor(entries=1000)


def test_learns_always_taken():
    p = GsharePredictor()
    for _ in range(10):
        p.update(pc=42, taken=True)
    assert p.predict(42) is True


def test_learns_alternating_pattern_via_history():
    """Global history lets gshare nail a strict alternation."""
    p = GsharePredictor(entries=1024)
    outcomes = [bool(i % 2) for i in range(4000)]
    wrong_late = 0
    for i, taken in enumerate(outcomes):
        correct = p.update(pc=7, taken=taken)
        if i >= 2000 and not correct:
            wrong_late += 1
    assert wrong_late / 2000 < 0.05


def test_loop_branch_high_accuracy():
    """A taken-99-times loop back edge should be nearly perfect."""
    p = GsharePredictor()
    for _ in range(50):
        for i in range(100):
            p.update(pc=13, taken=i != 99)
    assert p.accuracy > 0.9


def test_random_branches_near_chance():
    rng = random.Random(12345)
    p = GsharePredictor()
    for _ in range(20000):
        p.update(pc=rng.randrange(64), taken=rng.random() < 0.5)
    assert 0.4 < p.accuracy < 0.6


def test_counters_saturate():
    p = GsharePredictor()
    for _ in range(100):
        p.update(pc=1, taken=True)
    # One not-taken shouldn't flip a saturated counter.
    p.update(pc=1, taken=False)
    # Re-create the same history state the counter was trained under is
    # fiddly; just check global stats stayed sane.
    assert p.mispredictions >= 1
    assert p.predictions == 101


def test_peek_correct_is_pure():
    p = GsharePredictor()
    before = list(p._counters)
    p.peek_correct(5, True)
    assert p._counters == before
    assert p.predictions == 0
