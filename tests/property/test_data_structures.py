"""Hypothesis property tests for the core data structures."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.branch import GsharePredictor
from repro.compiler import tarjan_scc
from repro.isa import to_int32
from repro.memory import Cache, CacheConfig, MSHRFile
from repro.multipass import (HIT, HIT_INVALID, MISS, MISS_SPECULATIVE,
                             AdvanceStoreCache, RSEntry, ResultStore)


class TestInt32:
    @given(st.integers())
    def test_range(self, x):
        v = to_int32(x)
        assert -(1 << 31) <= v < (1 << 31)

    @given(st.integers())
    def test_idempotent(self, x):
        assert to_int32(to_int32(x)) == to_int32(x)

    @given(st.integers(), st.integers())
    def test_addition_homomorphism(self, a, b):
        assert to_int32(to_int32(a) + to_int32(b)) == to_int32(a + b)

    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    def test_identity_in_range(self, x):
        assert to_int32(x) == x


word_addrs = st.integers(min_value=0, max_value=1 << 16).map(lambda w: w * 4)


class TestCacheProperties:
    @given(st.lists(word_addrs, min_size=1, max_size=200))
    def test_fill_then_probe_hits(self, addrs):
        cache = Cache(CacheConfig("t", 4096, 64, 2, 1))
        for addr in addrs:
            cache.fill(addr)
            assert cache.probe(addr)

    @given(st.lists(word_addrs, max_size=200))
    def test_occupancy_bounded(self, addrs):
        config = CacheConfig("t", 2048, 64, 4, 1)
        cache = Cache(config)
        for addr in addrs:
            cache.access(addr)
            cache.fill(addr)
        for cache_set in cache._sets:
            # Untouched sets stay unallocated (None) until first use.
            assert cache_set is None or len(cache_set) <= config.assoc

    @given(st.lists(word_addrs, max_size=200))
    def test_stats_consistent(self, addrs):
        cache = Cache(CacheConfig("t", 2048, 64, 4, 1))
        for addr in addrs:
            cache.access(addr)
        assert cache.hits + cache.misses == cache.accesses


class TestMSHRProperties:
    @given(st.lists(st.tuples(st.integers(0, 63),
                              st.integers(0, 50)), max_size=64),
           st.integers(1, 8))
    def test_outstanding_bounded(self, ops, capacity):
        mshr = MSHRFile(capacity)
        now = 0
        for line, delta in ops:
            now += delta
            ready = mshr.allocate(line, now, latency=100)
            assert ready >= now
            assert mshr.outstanding(now) <= capacity

    @given(st.lists(st.integers(0, 15), min_size=2, max_size=40))
    def test_same_line_merges(self, lines):
        mshr = MSHRFile(16)
        first = {}
        for line in lines:
            ready = mshr.allocate(line, now=0, latency=100)
            if line in first:
                assert ready == first[line]   # merged into same fill
            first.setdefault(line, ready)


class TestGshareProperties:
    @given(st.lists(st.tuples(st.integers(0, 1023), st.booleans()),
                    max_size=500))
    def test_counters_consistent(self, events):
        p = GsharePredictor()
        for pc, taken in events:
            p.update(pc, taken)
        assert p.predictions == len(events)
        assert 0 <= p.mispredictions <= p.predictions
        assert 0.0 <= p.accuracy <= 1.0

    @given(st.lists(st.tuples(st.integers(0, 255), st.booleans()),
                    max_size=200))
    def test_deterministic(self, events):
        p1, p2 = GsharePredictor(), GsharePredictor()
        for pc, taken in events:
            assert p1.update(pc, taken) == p2.update(pc, taken)
        assert p1._counters == p2._counters


class TestASCProperties:
    @given(st.lists(st.tuples(st.booleans(), word_addrs,
                              st.integers(0, 1000)), max_size=120))
    def test_matches_reference_model(self, ops):
        """The ASC must forward the latest store value or admit it could
        have lost one (data-speculative) — never silently return a stale
        value as a clean hit."""
        asc = AdvanceStoreCache(entries=8, assoc=2)
        reference = {}
        for is_write, addr, value in ops:
            if is_write:
                asc.write(addr, value)
                reference[addr] = value
            else:
                outcome, forwarded = asc.read(addr)
                if outcome == HIT:
                    assert forwarded == reference[addr]
                elif outcome == MISS:
                    assert addr not in reference or True
                else:
                    assert outcome in (MISS_SPECULATIVE, HIT_INVALID)

    @given(st.lists(st.tuples(word_addrs, st.integers(0, 99)),
                    min_size=1, max_size=60))
    def test_clear_empties(self, writes):
        asc = AdvanceStoreCache(entries=8, assoc=2)
        for addr, value in writes:
            asc.write(addr, value)
        asc.clear()
        for addr, _ in writes:
            assert asc.read(addr)[0] == MISS


class TestResultStoreProperties:
    @given(st.lists(st.tuples(st.sampled_from(["put", "pop", "clear_from"]),
                              st.integers(0, 63)), max_size=200))
    def test_matches_dict_model(self, ops):
        rs = ResultStore()
        model = {}
        for op, seq in ops:
            if op == "put":
                rs.put(RSEntry(seq, ready=0))
                model[seq] = True
            elif op == "pop":
                got = rs.pop(seq)
                assert (got is not None) == (seq in model)
                model.pop(seq, None)
            else:
                rs.clear_from(seq)
                model = {s: v for s, v in model.items() if s < seq}
            assert len(rs) == len(model)
            assert rs.max_seq() == (max(model) if model else -1)


class TestTarjanProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.dictionaries(st.integers(0, 15),
                           st.lists(st.integers(0, 15), max_size=4),
                           max_size=16))
    def test_components_partition_nodes(self, adj):
        comps = tarjan_scc(adj)
        seen = [n for comp in comps for n in comp]
        all_nodes = set(adj) | {t for ts in adj.values() for t in ts}
        assert sorted(seen) == sorted(all_nodes)

    @settings(max_examples=50, deadline=None)
    @given(st.dictionaries(st.integers(0, 12),
                           st.lists(st.integers(0, 12), max_size=4),
                           max_size=13))
    def test_matches_networkx(self, adj):
        import networkx as nx
        g = nx.DiGraph()
        g.add_nodes_from(adj)
        for src, targets in adj.items():
            for dst in targets:
                g.add_edge(src, dst)
        expected = {frozenset(c)
                    for c in nx.strongly_connected_components(g)}
        got = {frozenset(c) for c in tarjan_scc(adj)}
        assert got == expected
