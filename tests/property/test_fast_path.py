"""Differential property tests for the simulation fast path.

The stall fast-forward (``BaseCore.next_event_cycle``) and the
decoded-trace inner loops must be *observationally invisible*: every
statistic a core reports — cycles, per-category breakdown, counters,
branch accuracy — must be bit-identical to the cycle-by-cycle reference
loop (``slow=True``), and attaching a tracer (which forces per-cycle
execution for event fidelity) must not change the numbers either.

Hypothesis drives the same adversarial program generator as
``test_random_programs``; the golden suite pins the packaged workloads,
this suite pins the contract on arbitrary small programs.
"""

from hypothesis import HealthCheck, given, settings

from repro.compiler import compile_program
from repro.harness import run_model
from repro.isa import execute
from repro.telemetry import TelemetrySink, Tracer

from .test_random_programs import materialize, programs

ALL_MODELS = ("inorder", "multipass", "runahead", "twopass", "ooo",
              "ooo-realistic", "multipass-noregroup",
              "multipass-norestart", "multipass-hwrestart")


def _comparable(stats):
    """Every externally observable statistic of one run."""
    return (stats.cycles, stats.instructions, dict(stats.cycle_breakdown),
            dict(stats.counters), stats.branch_accuracy)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs)
def test_fast_forward_matches_slow_reference(spec):
    compiled = compile_program(materialize(spec).build())
    trace = execute(compiled)
    for model in ALL_MODELS:
        fast = run_model(model, trace)
        slow = run_model(model, trace, slow=True)
        assert _comparable(fast) == _comparable(slow), model


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs)
def test_traced_matches_untraced_on_fast_path(spec):
    compiled = compile_program(materialize(spec).build())
    trace = execute(compiled)
    for model in ("inorder", "multipass", "runahead", "ooo",
                  "ooo-realistic"):
        untraced = run_model(model, trace)
        traced = run_model(model, trace, tracer=Tracer(TelemetrySink()))
        assert _comparable(untraced) == _comparable(traced), model
