"""The cycle-bound oracle on random programs.

The static lower bound of `repro.analysis.bounds` claims soundness for
*every* timing model — primary and ablation alike — on any legal trace,
not just the golden workload matrix.  Hypothesis probes that claim with
the same adversarial program generator the end-to-end property suite
uses: random ALU/memory/predicate bodies in a bounded loop, with and
without RESTART directives, both as written and as compiled.
"""

from hypothesis import HealthCheck, given, settings

from repro.analysis.bounds import cycle_lower_bound
from repro.compiler import compile_program
from repro.harness import ABLATION_FACTORIES, MODEL_FACTORIES, run_model
from repro.isa import execute

from tests.property.test_random_programs import materialize, programs

ALL_MODELS = sorted({**MODEL_FACTORIES, **ABLATION_FACTORIES})


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs)
def test_bound_never_exceeds_any_model(spec):
    trace = execute(compile_program(materialize(spec).build()))
    bound = cycle_lower_bound(trace).bound
    for model in ALL_MODELS:
        cycles = run_model(model, trace).cycles
        assert bound <= cycles, (
            f"{model}: simulated {cycles} cycles below the static lower "
            f"bound {bound} (AUD001)")


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs)
def test_bound_sound_on_uncompiled_programs(spec):
    # The oracle must not depend on scheduling/grouping invariants the
    # compiler establishes; a raw source trace is equally in scope.
    trace = execute(materialize(spec).build())
    bound = cycle_lower_bound(trace)
    assert bound.bound >= 1
    for model in ("inorder", "multipass", "ooo"):
        assert bound.bound <= run_model(model, trace).cycles, model


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs)
def test_bound_components_are_consistent(spec):
    trace = execute(compile_program(materialize(spec).build()))
    bound = cycle_lower_bound(trace)
    # The headline bound is the max of its components, and the binding
    # component names one that attains it.
    components = {
        "dep_height": bound.dep_height,
        "width": bound.width_bound,
        "mem_ports": bound.mem_bound,
        "int_ports": bound.int_bound,
        "fp_ports": bound.fp_bound,
        "br_ports": bound.br_bound,
    }
    assert bound.bound == max(components.values())
    assert components[bound.binding] == bound.bound
    # Width counts every occupied slot, so it is never beaten by a
    # single port class covering a subset of the entries.
    assert bound.entries == len(trace)
