"""Columnar-vs-scalar differential property suite.

The columnar OOO kernel (:mod:`repro.ooo.columnar`) and the columnar
tightenings in the other cores must be *observationally equivalent* to
the cycle-by-cycle scalar reference (``slow=True``): identical cycle
counts, identical stall attribution, identical counters, and — the
strongest form of the contract — an identical **retired-instruction
stream**: the same seqs commit in the same order at the same cycles.

This is the gate named by the PR-7 tentpole: the scalar inner loops may
only be retired once this suite (plus the golden matrix) pins every
columnar path against them.  Hypothesis drives the same adversarial
program generator as ``test_random_programs`` — bounded loops of random
ALU/memory/predicate bodies, with and without RESTART directives — so
the contract is probed on arbitrary programs, not just the packaged
workloads.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.analysis.bounds import cycle_lower_bound
from repro.compiler import compile_program
from repro.harness import (ABLATION_FACTORIES, MODEL_FACTORIES,
                           make_model, run_model)
from repro.isa import ProgramBuilder, R, execute

from .test_random_programs import materialize, programs

#: Every registered model variant (primary + ablations) — 9 as of PR 7.
ALL_MODELS = sorted({**MODEL_FACTORIES, **ABLATION_FACTORIES})

#: The models whose fast path is a columnar event-driven kernel: the
#: OOO pair (PR 7) and the multipass family (PR 9).
COLUMNAR_MODELS = ("ooo", "ooo-realistic", "multipass", "runahead",
                   "twopass", "multipass-norestart",
                   "multipass-noregroup", "multipass-hwrestart")

#: The multipass-family subset (advance/rally passes, SRF/ASC state).
MULTIPASS_MODELS = ("multipass", "runahead", "twopass",
                    "multipass-norestart", "multipass-noregroup",
                    "multipass-hwrestart")


class RetireRecorder:
    """A ``core.replay`` stand-in that records the retired stream.

    Cores call ``replay.commit(entry)`` once per architecturally retired
    instruction, in commit order; recording the seqs observes the full
    retirement stream without tracing (which would force the scalar
    loop and defeat the differential).
    """

    def __init__(self):
        self.seqs = []

    def commit(self, entry):
        self.seqs.append(entry.seq)

    def finish(self):
        """Called by ``finalize()``; nothing to verify here."""


def _comparable(stats):
    return (stats.cycles, stats.instructions, dict(stats.cycle_breakdown),
            dict(stats.counters), stats.branch_accuracy)


def _run_recorded(model, trace, slow):
    core = make_model(model, trace, slow=slow)
    recorder = RetireRecorder()
    core.replay = recorder
    stats = core.run()
    return stats, recorder.seqs


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs)
def test_columnar_matches_scalar_everywhere(spec):
    """Cycles, breakdown, counters and accuracy agree on all 9 variants."""
    compiled = compile_program(materialize(spec).build())
    trace = execute(compiled)
    for model in ALL_MODELS:
        fast = run_model(model, trace)
        slow = run_model(model, trace, slow=True)
        assert _comparable(fast) == _comparable(slow), model


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs)
def test_retired_streams_identical(spec):
    """The columnar kernel retires the same seqs in the same order.

    Every seq must appear exactly once (trace replay commits each
    dynamic instruction once) and the fast/slow streams must be equal
    element-for-element — a stricter check than the aggregate stats,
    which could mask compensating reorderings.
    """
    compiled = compile_program(materialize(spec).build())
    trace = execute(compiled)
    n = len(trace)
    for model in ALL_MODELS:
        fast_stats, fast_seqs = _run_recorded(model, trace, slow=False)
        slow_stats, slow_seqs = _run_recorded(model, trace, slow=True)
        assert fast_seqs == slow_seqs, model
        assert sorted(fast_seqs) == list(range(n)), model
        assert _comparable(fast_stats) == _comparable(slow_stats), model


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs, st.sampled_from(COLUMNAR_MODELS))
def test_audit_oracle_holds_on_columnar_path(spec, model):
    """The static cycle bound is sound against the columnar kernel too.

    The audit oracle's soundness claim (AUD001) quantifies over timing
    models, not loop implementations — so it must hold for the
    event-driven kernel exactly as for the scalar reference it
    replaced.
    """
    trace = execute(compile_program(materialize(spec).build()))
    bound = cycle_lower_bound(trace).bound
    fast = run_model(model, trace).cycles
    slow = run_model(model, trace, slow=True).cycles
    assert fast == slow, model
    assert bound <= fast, (
        f"{model}: columnar kernel simulated {fast} cycles below the "
        f"static lower bound {bound} (AUD001)")


def test_columnar_routing():
    """--slow and tracing must route to the scalar reference loop."""
    from repro.telemetry import TelemetrySink, Tracer
    spec = ([("add", *_regs(3))], 2, False)
    trace = execute(compile_program(materialize(spec).build()))
    for model in ("ooo", "multipass", "runahead", "twopass"):
        fast = make_model(model, trace)
        assert not fast.slow
        slow = make_model(model, trace, slow=True)
        assert slow.slow
        traced = make_model(model, trace, tracer=Tracer(TelemetrySink()))
        assert traced.tracer.enabled
        # All three agree on the stats regardless of the loop that ran.
        a, b, c = fast.run(), slow.run(), traced.run()
        assert _comparable(a) == _comparable(b) == _comparable(c), model


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs)
def test_multipass_family_retired_streams_identical(spec):
    """Dedicated multipass-family differential: the columnar advance/
    rally kernel retires the same seqs in the same order as the scalar
    reference, on every family variant, with and without RESTART
    directives in the generated program."""
    compiled = compile_program(materialize(spec).build())
    trace = execute(compiled)
    n = len(trace)
    for model in MULTIPASS_MODELS:
        fast_stats, fast_seqs = _run_recorded(model, trace, slow=False)
        slow_stats, slow_seqs = _run_recorded(model, trace, slow=True)
        assert fast_seqs == slow_seqs, model
        assert sorted(fast_seqs) == list(range(n)), model
        assert _comparable(fast_stats) == _comparable(slow_stats), model


def _idle_skip_program(padding: int):
    """A cold-miss load, ``padding`` independent ALU ops, a dependent
    consumer: the consumer stalls architecturally on the miss, the
    advance pass drains, and the machine goes idle until the fill."""
    b = ProgramBuilder(f"idle-skip-{padding}")
    for i in range(2, 8):
        b.movi(R(i), i)
    b.movi(R(12), 0x1000)
    b.ld(R(1), R(12), 0)
    for i in range(padding):
        r = R(2 + (i % 6))
        b.addi(r, r, 1)
    b.add(R(8), R(1), R(1))
    b.halt()
    return b.build()


def test_pass_restart_lands_on_first_skipped_cycle():
    """Idle-skip boundary sweep for the multipass kernel.

    While the architectural stream is blocked on a cold memory miss the
    kernel fast-forwards idle cycles to the next event.  The pass
    restart (the trigger-load fill that re-enters rally — and, on the
    hardware-restart ablation, the wheel/heap pready rendezvous) must
    never be jumped over.  Sweeping the padding length slides the stall
    entry cycle one step per iteration relative to the fixed fill time,
    so some alignment in the sweep places the restart event exactly on
    the first skipped cycle; fast and slow must agree at every
    alignment, including that one.
    """
    for padding in range(0, 40):
        trace = execute(compile_program(_idle_skip_program(padding)))
        n = len(trace)
        for model in ("multipass", "runahead", "multipass-hwrestart"):
            fast_stats, fast_seqs = _run_recorded(model, trace,
                                                  slow=False)
            slow_stats, slow_seqs = _run_recorded(model, trace,
                                                  slow=True)
            assert fast_seqs == slow_seqs, (model, padding)
            assert sorted(fast_seqs) == list(range(n)), (model, padding)
            assert _comparable(fast_stats) == _comparable(slow_stats), (
                model, padding)


def _regs(k):
    from repro.isa import R
    return (R(1), R(2), R(k))
