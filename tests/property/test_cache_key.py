"""Property tests for the result-cache key and the multipass ResultStore.

The cache-key contract: any change to any field of
:class:`CompileOptions` or :class:`MachineConfig` — or to the workload,
model, scale, instruction budget or source-tree digest — must change
the key; recreating identical configurations must reproduce it exactly
(the key is hash()-free, so it is stable across interpreter runs).

The ResultStore contract: random op programs against the store behave
like a plain seq -> entry mapping (persistence across passes is just
"the dict keeps what you put until popped/flushed").
"""

import dataclasses

import pytest

hypothesis = pytest.importorskip(
    "hypothesis", reason="property tests need hypothesis")
import hypothesis.strategies as st  # noqa: E402
from hypothesis import given, settings  # noqa: E402

from repro.compiler import CompileOptions  # noqa: E402
from repro.harness.results_cache import (canonical, cell_key,  # noqa: E402
                                         fingerprint)
from repro.machine import MachineConfig  # noqa: E402
from repro.multipass import RSEntry, ResultStore  # noqa: E402
from repro.resources import PortModel  # noqa: E402

DIGEST = "test-digest"


def _key(**overrides):
    base = dict(workload="mcf", model="multipass", scale=1.0,
                compile_options=CompileOptions(), config=MachineConfig(),
                max_instructions=5_000_000, tree_digest=DIGEST)
    base.update(overrides)
    return cell_key(**base)


#: field name -> strategy of *non-default* values for that field.
_COMPILE_MUTATIONS = {
    "if_conversion": st.just(True),
    "reorder": st.just(False),
    "restarts": st.just(False),
    "dominance_ratio": st.floats(0.1, 64.0).filter(lambda v: v != 2.0),
    "ports": st.integers(1, 5).map(lambda w: PortModel(width=w)),
}

_MACHINE_INT_FIELDS = [
    f.name for f in dataclasses.fields(MachineConfig)
    if f.type == "int" or isinstance(getattr(MachineConfig(), f.name), int)
]


class TestCacheKey:
    def test_stable_across_fresh_instances(self):
        assert _key() == _key()
        assert _key(compile_options=CompileOptions(),
                    config=MachineConfig()) == _key()

    @given(st.sampled_from(sorted(_COMPILE_MUTATIONS)), st.data())
    def test_any_compile_option_field_changes_the_key(self, name, data):
        value = data.draw(_COMPILE_MUTATIONS[name])
        mutated = dataclasses.replace(CompileOptions(), **{name: value})
        assert _key(compile_options=mutated) != _key()
        assert fingerprint(mutated) != fingerprint(CompileOptions())

    @given(st.sampled_from(sorted(_MACHINE_INT_FIELDS)),
           st.integers(1, 10_000))
    def test_any_machine_int_field_changes_the_key(self, name, value):
        default = getattr(MachineConfig(), name)
        if isinstance(default, bool):
            value = not default
        elif value == default:
            value = default + 1
        mutated = dataclasses.replace(MachineConfig(), **{name: value})
        assert _key(config=mutated) != _key()

    def test_machine_name_and_hierarchy_change_the_key(self):
        renamed = dataclasses.replace(MachineConfig(), name="other")
        assert _key(config=renamed) != _key()
        from repro.memory.configs import HIERARCHIES
        rehoused = MachineConfig().with_hierarchy(HIERARCHIES["config1"]())
        assert _key(config=rehoused) != _key()

    @given(st.sampled_from(["workload", "model"]), st.text(min_size=1))
    def test_identity_fields_change_the_key(self, field, value):
        base = dict(workload="mcf", model="multipass")
        if value == base[field]:
            value += "x"
        assert _key(**{field: value}) != _key()

    def test_scale_budget_and_digest_change_the_key(self):
        assert _key(scale=0.5) != _key()
        assert _key(max_instructions=1_000) != _key()
        assert _key(tree_digest="other-digest") != _key()

    @given(st.floats(0.01, 100.0))
    def test_equal_scales_collide_unequal_do_not(self, scale):
        assert _key(scale=scale) == _key(scale=scale)
        if scale != 1.0:
            assert _key(scale=scale) != _key()

    def test_canonical_rejects_unfingerprintable_types(self):
        with pytest.raises(TypeError):
            canonical(object())


# --- ResultStore persistence invariants ------------------------------

_SEQS = st.integers(0, 63)

_OPS = st.one_of(
    st.tuples(st.just("put"), _SEQS, st.integers(0, 1000)),
    st.tuples(st.just("get"), _SEQS, st.none()),
    st.tuples(st.just("pop"), _SEQS, st.none()),
    st.tuples(st.just("discard"), _SEQS, st.none()),
    st.tuples(st.just("clear_from"), _SEQS, st.none()),
)


class TestResultStoreProperties:
    @settings(max_examples=60)
    @given(st.lists(_OPS, max_size=120))
    def test_random_program_matches_mapping_model(self, ops):
        store = ResultStore(capacity=256)
        model = {}
        for op, seq, arg in ops:
            if op == "put":
                entry = RSEntry(seq, ready=arg)
                store.put(entry)
                model[seq] = entry
            elif op == "get":
                got = store.get(seq)
                assert got is model.get(seq)
                if got is not None:
                    assert got.seq == seq
            elif op == "pop":
                assert store.pop(seq) is model.pop(seq, None)
            elif op == "discard":
                store.discard(seq)
                model.pop(seq, None)
            else:  # clear_from: flush at/beyond seq, count the victims
                expected = {s for s in model if s >= seq}
                assert store.clear_from(seq) == len(expected)
                for s in expected:
                    del model[s]
            # Invariants checked after every op.
            assert len(store) == len(model)
            assert store.max_seq() == max(model, default=-1)
            for s in model:
                assert s in store
        for s, entry in model.items():
            assert store.peek(s) is entry

    @settings(max_examples=30)
    @given(st.lists(st.tuples(_SEQS, st.integers(0, 100)), min_size=1))
    def test_put_overwrites_latest_pass_wins(self, puts):
        store = ResultStore()
        for seq, ready in puts:
            store.put(RSEntry(seq, ready=ready))
        assert store.writes == len(puts)
        latest = {}
        for seq, ready in puts:
            latest[seq] = ready
        for seq, ready in latest.items():
            assert store.peek(seq).ready == ready

    @given(st.lists(_SEQS, unique=True, min_size=1), st.integers(0, 63))
    def test_clear_from_is_a_prefix_filter(self, seqs, cut):
        store = ResultStore()
        for seq in seqs:
            store.put(RSEntry(seq, ready=0))
        store.clear_from(cut)
        assert store.max_seq() < cut  # -1 when emptied
        for seq in seqs:
            assert (seq in store) == (seq < cut)
