"""End-to-end property tests over randomly generated programs.

Hypothesis builds small but adversarial programs (random ALU/memory/
predicate operations inside a bounded loop), and we check the invariants
every layer must preserve:

* the compiler (scheduling + grouping + RESTART insertion) does not
  change architectural results;
* every timing model commits each dynamic instruction exactly once and
  its cycle breakdown accounts for every cycle;
* the multipass core's result preservation and value-based memory
  verification never corrupt execution, under every ablation flag.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.compiler import CompileOptions, compile_program
from repro.harness import run_model
from repro.isa import P, ProgramBuilder, R, execute
from repro.multipass import MultipassCore

# Registers the generator may write; r12/r13 are reserved memory bases and
# r14 the loop counter.
WRITABLE = [R(i) for i in range(1, 9)]
BASES = [R(12), R(13)]
COUNTER = R(14)
PREDS = [P(1), P(2)]
REGION_A, REGION_B = 0x1000, 0x8000

reg = st.sampled_from(WRITABLE)
base = st.sampled_from(BASES)
pred = st.sampled_from(PREDS)
offset = st.integers(0, 15).map(lambda k: k * 4)
small_imm = st.integers(-64, 64)

op = st.one_of(
    st.tuples(st.just("add"), reg, reg, reg),
    st.tuples(st.just("sub"), reg, reg, reg),
    st.tuples(st.just("xor"), reg, reg, reg),
    st.tuples(st.just("mul"), reg, reg, reg),
    st.tuples(st.just("addi"), reg, reg, small_imm),
    st.tuples(st.just("shli"), reg, reg, st.integers(0, 4)),
    st.tuples(st.just("movi"), reg, small_imm),
    st.tuples(st.just("ld"), reg, base, offset),
    st.tuples(st.just("st"), reg, base, offset),
    st.tuples(st.just("cmplti"), pred, reg, small_imm),
    st.tuples(st.just("pred_addi"), reg, reg, small_imm, pred),
    st.tuples(st.just("pred_st"), reg, base, offset, pred),
)

programs = st.tuples(
    st.lists(op, min_size=3, max_size=25),
    st.integers(1, 6),          # loop trip count
    st.booleans(),              # include a RESTART directive
)


def materialize(spec) -> ProgramBuilder:
    body, trips, with_restart = spec
    b = ProgramBuilder("random")
    for i, r in enumerate(WRITABLE):
        b.movi(r, i + 1)
    b.movi(BASES[0], REGION_A)
    b.movi(BASES[1], REGION_B)
    b.movi(COUNTER, trips)
    b.label("loop")
    for emitted, item in enumerate(body):
        kind = item[0]
        if kind == "pred_addi":
            _, rd, rs, imm, p = item
            b.addi(rd, rs, imm, pred=p)
        elif kind == "pred_st":
            _, rs, rb, off, p = item
            b.st(rs, rb, off, pred=p)
        elif kind == "movi":
            _, rd, imm = item
            b.movi(rd, imm)
        elif kind == "ld":
            _, rd, rb, off = item
            b.ld(rd, rb, off)
            if with_restart and emitted == len(body) // 2:
                b.restart(rd)
        elif kind == "st":
            _, rs, rb, off = item
            b.st(rs, rb, off)
        elif kind == "cmplti":
            _, pd, rs, imm = item
            b.cmplti(pd, rs, imm)
        elif kind in ("addi", "shli"):
            _, rd, rs, imm = item
            getattr(b, kind)(rd, rs, imm)
        else:
            _, rd, rs1, rs2 = item
            {"add": b.add, "sub": b.sub, "xor": b.xor,
             "mul": b.mul}[kind](rd, rs1, rs2)
    b.subi(COUNTER, COUNTER, 1)
    b.cmpnei(P(3), COUNTER, 0)
    b.br("loop", pred=P(3))
    b.halt()
    return b


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs)
def test_compilation_preserves_semantics(spec):
    program = materialize(spec).build()
    compiled = compile_program(program)
    original = execute(program)
    scheduled = execute(compiled)
    assert original.final_registers == scheduled.final_registers
    assert original.final_memory == scheduled.final_memory


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs)
def test_all_models_commit_everything(spec):
    compiled = compile_program(materialize(spec).build())
    trace = execute(compiled)
    for model in ("inorder", "multipass", "runahead", "ooo",
                  "ooo-realistic"):
        stats = run_model(model, trace)
        assert stats.instructions == len(trace), model
        assert sum(stats.cycle_breakdown.values()) == stats.cycles, model
        assert stats.cycles >= len(trace) / 6 - 1, model


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs, st.booleans(), st.booleans(), st.booleans())
def test_multipass_ablations_sound(spec, regroup, restart, waw_flag):
    compiled = compile_program(materialize(spec).build())
    trace = execute(compiled)
    core = MultipassCore(trace, enable_regroup=regroup,
                         enable_restart=restart,
                         l1_miss_writes_srf=waw_flag)
    stats = core.run()
    assert stats.instructions == len(trace)
    assert sum(stats.cycle_breakdown.values()) == stats.cycles


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs)
def test_models_deterministic(spec):
    compiled = compile_program(materialize(spec).build())
    trace = execute(compiled)
    for model in ("multipass", "ooo"):
        a = run_model(model, trace)
        b = run_model(model, trace)
        assert a.cycles == b.cycles, model
        assert a.cycle_breakdown == b.cycle_breakdown, model
