"""Tests for the ideal and realistic out-of-order models."""

import pytest

from repro.compiler import CompileOptions
from repro.isa import P, R
from repro.machine import MachineConfig
from repro.multipass import simulate_multipass
from repro.ooo import simulate_ooo, simulate_realistic_ooo
from repro.pipeline import StallCategory, simulate_inorder
from tests.conftest import build_trace
from tests.multipass.test_core import (overlap_kernel, persistence_kernel,
                                       restart_kernel)

NO_REORDER = CompileOptions(reorder=False, restarts=False)


def test_commits_every_instruction():
    for kernel in (overlap_kernel, persistence_kernel):
        trace = build_trace(kernel, compile_opts=NO_REORDER)
        for simulate in (simulate_ooo, simulate_realistic_ooo):
            stats = simulate(trace)
            assert stats.instructions == len(trace), kernel.__name__


def test_dataflow_overlaps_independent_misses():
    trace = build_trace(overlap_kernel, compile_opts=NO_REORDER)
    base = simulate_inorder(trace)
    ooo = simulate_ooo(trace)
    assert ooo.cycles < base.cycles * 0.7
    assert ooo.cycles < 220


def test_ooo_wakeup_beats_multipass_restart_on_chained_misses():
    """Fig. 1(c)/(d): OOO wakes E exactly when C returns; multipass only
    approximates this via restart, so OOO is at least as good."""
    trace = build_trace(restart_kernel, compile_opts=NO_REORDER)
    ooo = simulate_ooo(trace)
    mp = simulate_multipass(trace)
    assert ooo.cycles <= mp.cycles + 5


def test_ooo_not_limited_by_stop_bits():
    """Dependent chain split across groups still runs at dataflow speed."""
    def body(b):
        b.movi(R(1), 1)
        for i in range(2, 30):
            b.movi(R(i), i)       # independent work, many groups
        b.halt()

    trace = build_trace(body, compile_opts=NO_REORDER)
    ooo = simulate_ooo(trace)
    assert ooo.ipc > 3.0


def test_window_limit_caps_memory_level_parallelism():
    """A second miss beyond a small ROB cannot overlap the first."""
    def body(b):
        b.movi(R(1), 0xB00000)
        b.movi(R(2), 0xD00000)
        b.ld(R(3), R(1), 0)            # miss A
        b.add(R(4), R(3), R(3))        # dependent on A
        for i in range(100):           # filler wider than the small ROB
            b.movi(R(10 + (i % 50)), i)
        b.ld(R(5), R(2), 0)            # miss B, independent of A
        b.add(R(6), R(5), R(5))
        b.halt()

    trace = build_trace(body, compile_opts=NO_REORDER)
    small = simulate_ooo(trace, MachineConfig(ooo_window=16, ooo_rob=32))
    big = simulate_ooo(trace, MachineConfig(ooo_window=128, ooo_rob=256))
    # The big window overlaps A and B; the small one serializes them.
    assert big.cycles < small.cycles - 80


def test_realistic_queues_fill_under_long_miss():
    """Dependent work on a miss clogs the 16-entry queues; the realistic
    model falls behind ideal OOO."""
    def body(b):
        b.movi(R(1), 0xC00000)
        b.movi(R(30), 40)
        b.label("loop")
        b.ld(R(2), R(1), 0)            # cold miss each iteration
        for i in range(3, 20):         # dependent work clogs the int queue
            b.add(R(i), R(i - 1), R(2))
        b.addi(R(1), R(1), 4096)
        b.subi(R(30), R(30), 1)
        b.cmplti(P(1), R(30), 1)
        b.cmpeqi(P(2), P(1), 0)
        b.br("loop", pred=P(2))
        b.halt()

    trace = build_trace(body, compile_opts=NO_REORDER)
    ideal = simulate_ooo(trace)
    realistic = simulate_realistic_ooo(trace)
    assert realistic.cycles > ideal.cycles


def test_breakdown_sums_and_load_attribution():
    trace = build_trace(overlap_kernel, compile_opts=NO_REORDER)
    for simulate in (simulate_ooo, simulate_realistic_ooo):
        stats = simulate(trace)
        assert sum(stats.cycle_breakdown.values()) == stats.cycles
        assert stats.cycle_breakdown[StallCategory.LOAD] > 50


def test_mispredict_penalty_larger_than_inorder():
    """OOO pays 3 extra stages per refill (Table 2)."""
    def body(b):
        b.movi(R(1), 12345)
        b.movi(R(3), 300)
        b.label("loop")
        b.movi(R(4), 1103515245)
        b.mul(R(1), R(1), R(4))
        b.addi(R(1), R(1), 12345)
        b.shri(R(5), R(1), 16)
        b.andi(R(6), R(5), 1)
        b.cmpeqi(P(1), R(6), 1)
        b.br("skip", pred=P(1))
        b.addi(R(2), R(2), 2)
        b.label("skip")
        b.subi(R(3), R(3), 1)
        b.cmplti(P(2), R(3), 1)
        b.cmpeqi(P(4), P(2), 0)
        b.br("loop", pred=P(4))
        b.halt()

    trace = build_trace(body, compile_opts=NO_REORDER)
    ooo = simulate_ooo(trace)
    assert ooo.counters["mispredicts"] > 10
    assert ooo.cycle_breakdown[StallCategory.FRONT_END] > 0


def test_deterministic():
    trace = build_trace(persistence_kernel, compile_opts=NO_REORDER)
    a = simulate_ooo(trace)
    b = simulate_ooo(trace)
    assert a.cycles == b.cycles
    assert a.cycle_breakdown == b.cycle_breakdown
