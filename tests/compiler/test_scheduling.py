"""Tests for the list scheduler and issue-group formation."""

import pytest

from repro.compiler import (CompileOptions, compile_program,
                            form_issue_groups, list_schedule)
from repro.isa import F, Opcode, P, ProgramBuilder, R, execute
from repro.resources import PortModel, PortTracker
from repro.isa.opcodes import FUClass


def chain_program():
    b = ProgramBuilder("chain")
    b.movi(R(1), 1)
    b.addi(R(2), R(1), 1)     # depends on previous
    b.addi(R(3), R(2), 1)
    b.movi(R(10), 5)          # independent
    b.movi(R(11), 6)          # independent
    b.halt()
    return b.build()


def test_groups_split_on_raw_dependence():
    p = form_issue_groups(chain_program())
    groups = [i.group for i in p]
    # The three chained adds must live in three different groups.
    assert groups[0] != groups[1] != groups[2]
    # Independent movis can share the first group.
    assert groups[3] == groups[0] or groups[4] == groups[0] or \
        groups[3] == groups[4]


def test_groups_split_on_waw():
    b = ProgramBuilder("waw")
    b.movi(R(1), 1)
    b.movi(R(1), 2)
    b.halt()
    p = form_issue_groups(b.build())
    assert p[0].group != p[1].group


def test_branch_closes_group():
    b = ProgramBuilder("br")
    b.movi(R(1), 0)
    b.cmpeqi(P(1), R(1), 0)
    b.br("end", pred=P(1))
    b.label("end")
    b.halt()
    p = form_issue_groups(b.build())
    br = next(i for i in p if i.opcode is Opcode.BR)
    assert br.stop is True
    assert p[br.index + 1].group != br.group


def test_branch_target_starts_group():
    b = ProgramBuilder("tgt")
    b.movi(R(1), 1)
    b.movi(R(2), 2)
    b.label("tgt")
    b.movi(R(3), 3)
    b.jmp("tgt")
    p = form_issue_groups(b.build())
    assert p[2].group != p[1].group


def test_load_after_store_splits_group():
    b = ProgramBuilder("mem")
    b.movi(R(1), 0x40)
    b.movi(R(2), 9)
    b.st(R(2), R(1), 0)
    b.ld(R(3), R(1), 0)
    b.halt()
    p = form_issue_groups(b.build())
    st = next(i for i in p if i.opcode is Opcode.ST)
    ld = next(i for i in p if i.opcode is Opcode.LD)
    assert st.group != ld.group


def test_width_limit_respected():
    b = ProgramBuilder("wide")
    for i in range(1, 10):
        b.movi(R(i), i)    # 9 independent movis
    b.halt()
    p = form_issue_groups(b.build(), PortModel(width=6))
    from collections import Counter
    sizes = Counter(i.group for i in p if i.opcode is Opcode.MOVI)
    assert max(sizes.values()) <= 6


def test_port_limits_respected():
    b = ProgramBuilder("fp")
    for i in range(1, 5):
        b.fadd(F(i), F(10 + i), F(20 + i))   # 4 independent fp adds
    b.halt()
    p = form_issue_groups(b.build(), PortModel(f_ports=2))
    from collections import Counter
    sizes = Counter(i.group for i in p if i.opcode is Opcode.FADD)
    assert max(sizes.values()) <= 2


def test_port_tracker_alu_spills_to_m_ports():
    tracker = PortTracker(PortModel(width=6, m_ports=4, i_ports=2))
    for _ in range(6):
        assert tracker.can_issue(FUClass.ALU)
        tracker.issue(FUClass.ALU)
    assert not tracker.can_issue(FUClass.ALU)


def test_port_tracker_rejects_overflow():
    tracker = PortTracker(PortModel(f_ports=1))
    tracker.issue(FUClass.FP)
    with pytest.raises(ValueError):
        tracker.issue(FUClass.FP)


def mixed_program():
    b = ProgramBuilder("mixed")
    b.data_words(0x200, range(100))
    b.movi(R(1), 0x200)
    b.movi(R(2), 0)
    b.movi(R(3), 20)
    b.label("loop")
    b.ld(R(4), R(1), 0)
    b.mul(R(5), R(4), R(4))
    b.add(R(2), R(2), R(5))
    b.st(R(2), R(1), 400)
    b.addi(R(1), R(1), 4)
    b.subi(R(3), R(3), 1)
    b.cmplti(P(1), R(3), 1)
    b.cmpeqi(P(2), P(1), 0)
    b.br("loop", pred=P(2))
    b.halt()
    return b.build()


def test_list_schedule_preserves_semantics():
    p = mixed_program()
    scheduled = list_schedule(p)
    t1 = execute(p)
    t2 = execute(scheduled)
    assert t1.final_registers == t2.final_registers
    assert t1.final_memory == t2.final_memory
    assert len(t1) == len(t2)


def test_list_schedule_keeps_block_sizes():
    p = mixed_program()
    scheduled = list_schedule(p)
    assert len(scheduled) == len(p)
    # Control instructions stay last in their blocks.
    from repro.compiler import build_cfg
    cfg = build_cfg(scheduled)
    for block in cfg:
        last = scheduled[block.end - 1]
        body = [scheduled[i] for i in range(block.start, block.end - 1)]
        assert not any(i.is_branch or i.opcode is Opcode.HALT for i in body)
        assert last.index == block.end - 1


def test_compile_program_full_pipeline_preserves_semantics():
    from tests.compiler.test_scc_criticality import pointer_chase_program
    p = pointer_chase_program()
    out = compile_program(p)
    t1 = execute(p)
    t2 = execute(out)
    assert t1.final_registers == t2.final_registers
    assert out.restart_count() >= 1
    assert all(i.group >= 0 for i in out)


def test_compile_options_disable_restarts():
    from tests.compiler.test_scc_criticality import pointer_chase_program
    p = pointer_chase_program()
    out = compile_program(p, CompileOptions(restarts=False))
    assert out.restart_count() == 0
