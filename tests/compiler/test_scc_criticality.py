"""Tests for Tarjan SCC, criticality analysis and RESTART insertion."""

from repro.compiler import (find_critical_sccs, insert_restarts,
                            nontrivial_sccs, tarjan_scc)
from repro.isa import F, Opcode, P, ProgramBuilder, R, execute


def test_tarjan_simple_cycle():
    adj = {1: [2], 2: [3], 3: [1], 4: [1]}
    comps = {frozenset(c) for c in tarjan_scc(adj)}
    assert frozenset({1, 2, 3}) in comps
    assert frozenset({4}) in comps


def test_tarjan_dag_all_singletons():
    adj = {1: [2, 3], 2: [4], 3: [4], 4: []}
    comps = tarjan_scc(adj)
    assert all(len(c) == 1 for c in comps)
    # Reverse topological: 4 before 1.
    order = [c[0] for c in comps]
    assert order.index(4) < order.index(1)


def test_tarjan_two_cycles():
    adj = {1: [2], 2: [1], 3: [4], 4: [3], 2.5: []}
    comps = {frozenset(c) for c in nontrivial_sccs(adj)}
    assert comps == {frozenset({1, 2}), frozenset({3, 4})}


def test_nontrivial_includes_self_loop():
    adj = {1: [1], 2: [3], 3: []}
    comps = nontrivial_sccs(adj)
    assert [c for c in comps if c == [1]]


def test_tarjan_deep_chain_is_iterative():
    n = 5000
    adj = {i: [i + 1] for i in range(n)}
    adj[n] = [0]  # one giant cycle
    comps = tarjan_scc(adj)
    assert len(comps) == 1
    assert len(comps[0]) == n + 1


def pointer_chase_program():
    """mcf-style recurrence: the chased pointer feeds lots of work."""
    b = ProgramBuilder("chase")
    b.movi(R(1), 0x1000)              # 0: node ptr
    b.movi(R(2), 0)                   # 1: acc
    b.movi(R(3), 10)                  # 2: count
    b.label("loop")
    b.ld(R(1), R(1), 0)               # 3: node = node->next   (SCC)
    b.ld(R(4), R(1), 4)               # 4: value load
    b.mul(R(5), R(4), R(4))           # 5: expensive work
    b.fadd(F(1), F(1), F(2))          # 6: more expensive work
    b.add(R(2), R(2), R(5))           # 7
    b.subi(R(3), R(3), 1)             # 8
    b.cmplti(P(1), R(3), 1)           # 9
    b.cmpeqi(P(2), P(1), 0)           # (not used; keep graph simple)
    b.br("loop", pred=P(2))           # branch while p2
    b.halt()
    # Ring of list nodes so the loop terminates wherever it lands.
    for i in range(16):
        b.data_word(0x1000 + i * 8, 0x1000 + ((i + 1) % 16) * 8)
        b.data_word(0x1000 + i * 8 + 4, i)
    return b.build()


def test_critical_scc_found_for_pointer_chase():
    p = pointer_chase_program()
    sccs = find_critical_sccs(p)
    assert sccs, "pointer-chase recurrence should be critical"
    chase = sccs[0]
    assert 3 in chase.loads            # the ld r1 = [r1]
    assert chase.preceded > chase.succeeded


def test_restart_inserted_after_critical_load():
    p = pointer_chase_program()
    out = insert_restarts(p)
    restarts = [i for i in out if i.opcode is Opcode.RESTART]
    assert len(restarts) == 1
    r = restarts[0]
    load = out[r.index - 1]
    assert load.opcode is Opcode.LD
    assert r.srcs == (load.dests[0],)


def test_restart_insertion_is_idempotent():
    p = pointer_chase_program()
    once = insert_restarts(p)
    twice = insert_restarts(once)
    assert once.restart_count() == twice.restart_count() == 1


def test_restart_preserves_semantics():
    p = pointer_chase_program()
    out = insert_restarts(p)
    t1 = execute(p)
    t2 = execute(out)
    assert t1.final_registers == t2.final_registers
    assert t1.final_memory == t2.final_memory


def test_no_restart_for_balanced_loop():
    """A loop whose loads feed little downstream work stays RESTART-free."""
    b = ProgramBuilder("balanced")
    b.movi(R(1), 0x100)
    b.movi(R(2), 0)
    b.movi(R(3), 4)
    b.label("loop")
    b.mul(R(6), R(2), R(2))           # expensive work BEFORE the load
    b.mul(R(7), R(6), R(6))
    b.div(R(8), R(7), R(3))
    b.add(R(9), R(6), R(7))
    b.st(R(9), R(1), 32)
    b.addi(R(1), R(1), 4)             # induction SCC contains no load
    b.subi(R(3), R(3), 1)
    b.cmplti(P(1), R(3), 1)
    b.cmpeqi(P(2), P(1), 0)
    b.br("loop", pred=P(2))
    b.halt()
    p = b.build()
    assert insert_restarts(p).restart_count() == 0
