"""Tests for CFG construction and the reaching-definitions def-use graph."""

from repro.compiler import build_cfg, build_dataflow_graph
from repro.isa import P, ProgramBuilder, R


def loop_program():
    b = ProgramBuilder("loop")
    b.movi(R(1), 0)                  # 0: acc = 0
    b.movi(R(2), 1)                  # 1: i = 1
    b.label("loop")
    b.add(R(1), R(1), R(2))          # 2: acc += i        (loop-carried)
    b.addi(R(2), R(2), 1)            # 3: i += 1          (loop-carried)
    b.cmplei(P(1), R(2), 5)          # 4
    b.br("loop", pred=P(1))          # 5
    b.mov(R(3), R(1))                # 6
    b.halt()                         # 7
    return b.build()


def test_cfg_block_structure():
    cfg = build_cfg(loop_program())
    # Blocks: [0,2) preheader, [2,6) loop body, [6,8) exit.
    assert len(cfg) == 3
    assert (cfg.blocks[0].start, cfg.blocks[0].end) == (0, 2)
    assert (cfg.blocks[1].start, cfg.blocks[1].end) == (2, 6)
    assert (cfg.blocks[2].start, cfg.blocks[2].end) == (6, 8)


def test_cfg_edges():
    cfg = build_cfg(loop_program())
    assert cfg.blocks[0].succs == [1]
    assert sorted(cfg.blocks[1].succs) == [1, 2]   # back edge + fallthrough
    assert cfg.blocks[2].succs == []               # ends in halt
    assert sorted(cfg.blocks[1].preds) == [0, 1]


def test_cfg_jmp_has_single_successor():
    b = ProgramBuilder("j")
    b.movi(R(1), 1)
    b.jmp("end")
    b.movi(R(2), 2)    # dead
    b.label("end")
    b.halt()
    cfg = build_cfg(b.build())
    jmp_block = cfg.blocks[cfg.block_of[1]]
    assert len(jmp_block.succs) == 1


def test_dataflow_loop_carried_edges():
    p = loop_program()
    g = build_dataflow_graph(p)
    # acc += i at index 2 feeds itself around the back edge.
    assert 2 in g.succs[2]
    # i += 1 at 3 feeds the add at 2 and itself (loop carried).
    assert 2 in g.succs[3]
    assert 3 in g.succs[3]
    # Initial movi of acc reaches the loop add.
    assert 2 in g.succs[0]
    # The compare feeds the branch via the predicate register.
    assert 5 in g.succs[4]


def test_dataflow_kill_blocks_stale_defs():
    b = ProgramBuilder("kill")
    b.movi(R(1), 1)       # 0: killed by 1 before any use
    b.movi(R(1), 2)       # 1
    b.mov(R(2), R(1))     # 2: uses only def at 1
    b.halt()
    g = build_dataflow_graph(b.build())
    assert 2 not in g.succs[0]
    assert 2 in g.succs[1]


def test_reachability_helpers():
    p = loop_program()
    g = build_dataflow_graph(p)
    downstream = g.reachable_from(1)   # movi i=1
    assert {2, 3, 4, 5, 6} <= downstream
    upstream = g.reaching_to(6)        # mov r3 = acc
    assert {0, 2} <= upstream
