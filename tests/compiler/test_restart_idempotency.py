"""Regression: compiling twice must be a no-op for RESTART placement.

The criticality analysis runs on the *dataflow* of the program, and a
RESTART directive consumes the load it guards — a second compilation must
recognise existing directives instead of stacking another one after every
critical load, and must carry the label map through unchanged.
"""

import pytest

from repro.compiler import CompileOptions, compile_program, insert_restarts
from repro.isa import Opcode, execute
from repro.workloads import ALL_WORKLOADS, build_workload

from tests.compiler.test_scc_criticality import pointer_chase_program


def test_double_compilation_adds_no_restarts():
    once = compile_program(pointer_chase_program(), CompileOptions())
    twice = compile_program(once, CompileOptions())
    assert once.restart_count() == twice.restart_count() >= 1


def test_double_compilation_preserves_label_map():
    source = pointer_chase_program()
    once = compile_program(source, CompileOptions())
    twice = compile_program(once, CompileOptions())
    assert twice.labels == once.labels
    assert set(once.labels) == set(source.labels)


def test_double_compilation_preserves_semantics():
    once = compile_program(pointer_chase_program(), CompileOptions())
    twice = compile_program(once, CompileOptions())
    t1, t2 = execute(once), execute(twice)
    assert t1.final_registers == t2.final_registers
    assert t1.final_memory == t2.final_memory


def test_insert_restarts_alone_is_idempotent_and_keeps_labels():
    source = pointer_chase_program()
    once = insert_restarts(source)
    twice = insert_restarts(once)
    assert once.restart_count() == twice.restart_count() == 1
    assert twice.labels == once.labels


@pytest.mark.parametrize("workload", sorted(ALL_WORKLOADS))
def test_double_compilation_is_stable_on_every_workload(workload):
    program = build_workload(workload, scale=0.05)
    once = compile_program(program, CompileOptions())
    twice = compile_program(once, CompileOptions())
    assert twice.restart_count() == once.restart_count()
    assert twice.labels == once.labels
    # The scheduler may place the pre-existing RESTARTs differently, but
    # recompilation must not add or drop any instruction.
    from collections import Counter
    assert (Counter(i.opcode for i in twice)
            == Counter(i.opcode for i in once))
