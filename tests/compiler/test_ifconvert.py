"""Tests for the if-conversion pass."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.compiler import CompileOptions, compile_program, if_convert
from repro.isa import Opcode, P, ProgramBuilder, R, execute


def hammock_program(then_len=3, taken=False):
    """if (r1 == 1) skip else do <then_len> adds."""
    b = ProgramBuilder("hammock")
    b.movi(R(1), 1 if taken else 0)
    b.movi(R(2), 0)
    b.cmpeqi(P(1), R(1), 1)
    b.br("skip", pred=P(1))
    for _ in range(then_len):
        b.addi(R(2), R(2), 1)
    b.label("skip")
    b.mov(R(3), R(2))
    b.halt()
    return b.build()


class TestConversion:
    @pytest.mark.parametrize("taken", [False, True])
    def test_semantics_preserved(self, taken):
        p = hammock_program(taken=taken)
        q = if_convert(p)
        t1, t2 = execute(p), execute(q)
        assert t1.final_registers[R(2)] == t2.final_registers[R(2)]
        assert t1.final_registers[R(3)] == t2.final_registers[R(3)]

    def test_branch_removed(self):
        q = if_convert(hammock_program())
        assert not any(i.opcode is Opcode.BR for i in q)
        assert q.metadata["if_converted"] == 1

    def test_then_block_predicated_on_complement(self):
        q = if_convert(hammock_program())
        guards = {i.pred for i in q if i.opcode is Opcode.ADDI}
        assert len(guards) == 1
        guard = guards.pop()
        # The guard is a fresh predicate computed as NOT(p1).
        producer = next(i for i in q if guard in i.dests)
        assert producer.opcode is Opcode.CMPEQI
        assert producer.srcs == (P(1),)

    def test_long_block_not_converted(self):
        p = hammock_program(then_len=20)
        q = if_convert(p, max_block=8)
        assert any(i.opcode is Opcode.BR for i in q)

    def test_loop_back_edge_not_converted(self):
        b = ProgramBuilder("loop")
        b.movi(R(1), 5)
        b.label("loop")
        b.subi(R(1), R(1), 1)
        b.cmpnei(P(1), R(1), 0)
        b.br("loop", pred=P(1))       # backward: ineligible
        b.halt()
        p = b.build()
        q = if_convert(p)
        assert any(i.opcode is Opcode.BR for i in q)
        t1, t2 = execute(p), execute(q)
        assert t1.final_registers == t2.final_registers

    def test_side_entrance_blocks_conversion(self):
        b = ProgramBuilder("side")
        b.movi(R(1), 0)
        b.cmpeqi(P(1), R(1), 1)
        b.br("skip", pred=P(1))
        b.movi(R(2), 7)
        b.label("inside")             # targeted from below: side entrance
        b.addi(R(2), R(2), 1)
        b.label("skip")
        b.cmplti(P(2), R(2), 9)
        b.br("inside", pred=P(2))
        b.halt()
        p = b.build()
        q = if_convert(p)
        t1, t2 = execute(p), execute(q)
        assert t1.final_registers == t2.final_registers

    def test_unconditional_jump_not_converted(self):
        b = ProgramBuilder("jmp")
        b.movi(R(1), 1)
        b.jmp("skip")
        b.movi(R(2), 9)
        b.label("skip")
        b.halt()
        q = if_convert(b.build())
        assert any(i.opcode is Opcode.JMP for i in q)


class TestPipelineIntegration:
    def test_enabled_via_options(self):
        p = hammock_program()
        out = compile_program(p, CompileOptions(if_conversion=True))
        assert not any(i.opcode is Opcode.BR for i in out)
        t1, t2 = execute(p), execute(out)
        assert t1.final_registers[R(3)] == t2.final_registers[R(3)]

    def test_disabled_by_default(self):
        out = compile_program(hammock_program())
        assert any(i.opcode is Opcode.BR for i in out)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 8), st.integers(-4, 4), st.booleans())
def test_random_hammocks_preserve_semantics(then_len, threshold, negate):
    b = ProgramBuilder("rand")
    b.movi(R(1), threshold)
    b.movi(R(2), 100)
    op = b.cmplti if negate else b.cmpeqi
    op(P(1), R(1), 0)
    b.br("skip", pred=P(1))
    for k in range(then_len):
        b.addi(R(2), R(2), k + 1)
    b.label("skip")
    b.halt()
    p = b.build()
    q = if_convert(p)
    t1, t2 = execute(p), execute(q)
    assert t1.final_registers.get(R(2)) == t2.final_registers.get(R(2))
