"""Tests for the twelve SPEC-like workload kernels."""

import pytest

from repro.compiler import compile_program
from repro.isa import execute
from repro.workloads import (ALL_WORKLOADS, CFP, CINT, build_workload,
                             registry)

SCALE = 0.05


@pytest.fixture(scope="module")
def traces():
    out = {}
    for name in ALL_WORKLOADS:
        program = compile_program(build_workload(name, SCALE))
        out[name] = execute(program, max_instructions=2_000_000)
    return out


def test_registry_complete():
    specs = registry()
    assert set(specs) == set(ALL_WORKLOADS)
    assert len(ALL_WORKLOADS) == 12
    assert set(CINT) | set(CFP) == set(ALL_WORKLOADS)
    assert len(CINT) == 8 and len(CFP) == 4


def test_suites_labelled():
    specs = registry()
    for name in CINT:
        assert specs[name].suite == "CINT2000"
    for name in CFP:
        assert specs[name].suite == "CFP2000"
    for spec in specs.values():
        assert spec.description


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        build_workload("specfp-imaginary")


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_workloads_terminate(traces, name):
    trace = traces[name]
    assert not trace.truncated
    assert len(trace) > 500


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_workloads_deterministic_build(name):
    p1 = build_workload(name, SCALE)
    p2 = build_workload(name, SCALE)
    assert len(p1) == len(p2)
    assert p1.memory_image == p2.memory_image
    for a, b in zip(p1.instructions, p2.instructions):
        assert a.opcode == b.opcode and a.srcs == b.srcs \
            and a.dests == b.dests and a.imm == b.imm


def test_restart_insertion_matches_paper(traces):
    """Critical-SCC RESTARTs land in bzip2, gap, mcf — and only there."""
    for name in ALL_WORKLOADS:
        restarts = traces[name].dynamic_counts()["restarts"]
        if name in ("bzip2", "gap", "mcf"):
            assert restarts > 0, name
        else:
            assert restarts == 0, name


def test_memory_kernels_load_heavy(traces):
    for name in ("mcf", "gap", "equake"):
        counts = traces[name].dynamic_counts()
        assert counts["loads"] / counts["total"] > 0.08, name


def test_fp_kernels_use_fp(traces):
    for name in CFP:
        counts = traces[name].dynamic_counts()
        assert counts["fp"] / counts["total"] > 0.15, name


def test_int_kernels_mostly_integer(traces):
    for name in ("crafty", "gzip", "twolf"):
        counts = traces[name].dynamic_counts()
        assert counts["fp"] == 0, name


def test_branchy_kernels_branch(traces):
    for name in ("twolf", "parser", "gzip"):
        counts = traces[name].dynamic_counts()
        assert counts["branches"] / counts["total"] > 0.04, name


def test_scaling_grows_work():
    small = execute(compile_program(build_workload("crafty", 0.03)),
                    max_instructions=2_000_000)
    large = execute(compile_program(build_workload("crafty", 0.08)),
                    max_instructions=2_000_000)
    assert len(large) > len(small)


def test_metadata_present():
    p = build_workload("mcf", SCALE)
    assert "n_basis" in p.metadata and "n_arcs" in p.metadata


def test_predication_used(traces):
    """EPIC kernels rely on if-conversion; several must nullify ops."""
    nullified_anywhere = sum(
        traces[name].dynamic_counts()["nullified"] for name in ALL_WORKLOADS)
    assert nullified_anywhere > 100
