"""Tests for the memory hierarchy, MSHRs and the Fig. 7 configurations."""

import pytest

from repro.memory import (MSHRFile, base_hierarchy, config1_hierarchy,
                          config2_hierarchy)


def fresh():
    return base_hierarchy().build()


def test_table2_parameters():
    cfg = base_hierarchy()
    assert cfg.l1d.size_bytes == 16 * 1024
    assert cfg.l1d.assoc == 4 and cfg.l1d.line_size == 64
    assert cfg.l1d.latency == 1
    assert cfg.l2.size_bytes == 256 * 1024
    assert cfg.l2.assoc == 8 and cfg.l2.line_size == 128
    assert cfg.l2.latency == 5
    assert cfg.l3.size_bytes == 3 * 1024 * 1024
    assert cfg.l3.assoc == 12 and cfg.l3.latency == 12
    assert cfg.memory_latency == 145
    assert cfg.max_outstanding_misses == 16


def test_fig7_configs():
    c1 = config1_hierarchy()
    assert c1.memory_latency == 200
    assert c1.l1d.size_bytes == 16 * 1024   # caches unchanged
    c2 = config2_hierarchy()
    assert c2.l1d.size_bytes == 8 * 1024
    assert c2.l2.latency == 7
    assert c2.l3.latency == 16
    assert c2.memory_latency == 200


def test_cold_miss_goes_to_memory():
    h = fresh()
    r = h.access(0x1000, now=0)
    assert r.level == "mem"
    assert r.latency == 145
    assert r.l1_miss


def test_hit_after_fill_completes():
    h = fresh()
    h.access(0x1000, now=0)            # miss, ready at 145
    r = h.access(0x1000, now=200)
    assert r.level == "L1D" and r.latency == 1


def test_inflight_line_shares_fill():
    h = fresh()
    first = h.access(0x1000, now=0)    # ready at 145
    second = h.access(0x1008, now=50)  # same 64B line, still in flight
    assert second.latency == first.ready - 50
    assert h.mshrs.allocations == 1    # merged, not re-allocated


def test_independent_misses_overlap():
    h = fresh()
    a = h.access(0x10000, now=0)
    b = h.access(0x20000, now=0)
    assert a.ready == b.ready == 145   # both outstanding concurrently


def test_l2_hit_latency():
    h = fresh()
    h.access(0x1000, now=0)
    # Evict from tiny L1 set by touching enough conflicting lines, then
    # re-access: should hit in L2 at 5 cycles.
    l1 = h.l1d.config
    conflict_stride = l1.num_sets * l1.line_size
    for i in range(1, l1.assoc + 1):
        h.access(0x1000 + i * conflict_stride, now=1000 * i)
    r = h.access(0x1000, now=100000)
    assert r.level == "L2"
    assert r.latency == 5


def test_ifetch_uses_l1i():
    h = fresh()
    h.access(0x40, now=0, kind="ifetch")
    assert h.l1i.accesses == 1 and h.l1d.accesses == 0
    r = h.access(0x40, now=500, kind="ifetch")
    assert r.level == "L1I"


def test_mshr_limit_delays_seventeenth_miss():
    h = fresh()
    for i in range(16):
        h.access(0x100000 + i * 4096, now=0)
    r = h.access(0x100000 + 16 * 4096, now=0)
    assert r.latency == 145 + 145      # waits for the first fill
    assert h.mshrs.full_stall_cycles == 145


def test_mshr_file_basics():
    m = MSHRFile(capacity=2)
    r1 = m.allocate(1, now=0, latency=100)
    r2 = m.allocate(2, now=0, latency=100)
    assert r1 == r2 == 100
    assert m.outstanding(0) == 2
    assert m.outstanding(100) == 0
    # Merge to in-flight line.
    m.allocate(3, now=200, latency=100)
    assert m.allocate(3, now=250, latency=100) == 300
    assert m.merges == 1


def test_mshr_rejects_zero_capacity():
    with pytest.raises(ValueError):
        MSHRFile(capacity=0)


def test_stats_shape():
    h = fresh()
    h.access(0x1000, now=0)
    h.access(0x1000, now=500)
    s = h.stats()
    assert s.accesses["L1D"] == 2
    assert s.misses["L1D"] == 1
    assert s.memory_accesses == 1


def test_config2_smaller_l1_misses_more():
    """The same conflict pattern that fits 16 KB must thrash 8 KB."""
    working_set = [i * 64 for i in range(200)]   # 12.5 KB of lines
    big = base_hierarchy().build()
    small = config2_hierarchy().build()
    for h in (big, small):
        now = 0
        for _ in range(5):
            for addr in working_set:
                now = h.access(addr, now=now).ready
    assert small.l1d.misses > big.l1d.misses
