"""Unit tests for the set-associative LRU cache model."""

import pytest

from repro.memory import Cache, CacheConfig


def small_cache(assoc=2, sets=4, line=64):
    return Cache(CacheConfig("T", line * assoc * sets, line, assoc, 1))


def test_geometry():
    cfg = CacheConfig("L1D", 16 * 1024, 64, 4, 1)
    assert cfg.num_sets == 64
    assert cfg.num_lines == 256


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        CacheConfig("bad", 1000, 64, 4, 1)


def test_miss_then_fill_then_hit():
    c = small_cache()
    assert c.access(0) is False
    c.fill(0)
    assert c.access(0) is True
    assert c.accesses == 2 and c.hits == 1 and c.misses == 1


def test_access_does_not_allocate():
    c = small_cache()
    c.access(0)
    assert c.access(0) is False   # still absent until fill()


def test_same_line_offsets_hit():
    c = small_cache(line=64)
    c.fill(0)
    assert c.access(63) is True
    assert c.access(64) is False


def test_lru_eviction_within_set():
    c = small_cache(assoc=2, sets=1, line=64)
    c.fill(0)      # line 0
    c.fill(64)     # line 1
    c.access(0)    # touch line 0 -> line 1 is now LRU
    victim = c.fill(128)
    assert victim == 1
    assert c.probe(0) and not c.probe(64) and c.probe(128)


def test_sets_are_independent():
    c = small_cache(assoc=1, sets=2, line=64)
    c.fill(0)       # set 0
    c.fill(64)      # set 1
    assert c.probe(0) and c.probe(64)
    c.fill(128)     # set 0 again -> evicts line 0
    assert not c.probe(0) and c.probe(64)


def test_invalidate_all():
    c = small_cache()
    c.fill(0)
    c.invalidate_all()
    assert not c.probe(0)


def test_miss_rate():
    c = small_cache()
    assert c.miss_rate == 0.0
    c.access(0)
    c.fill(0)
    c.access(0)
    assert c.miss_rate == pytest.approx(0.5)
