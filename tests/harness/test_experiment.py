"""Tests for the experiment harness, reports and figure drivers."""

import pytest

from repro.harness import (Matrix, TraceCache, fig6_table, figure6, figure8,
                           geomean, run_matrix, run_model, speedup_table,
                           stall_reduction, summarize_headline, table1)
from repro.machine import MachineConfig
from repro.memory.configs import config2_hierarchy

SCALE = 0.05
WORKLOADS = ("mcf", "crafty")


@pytest.fixture(scope="module")
def cache():
    return TraceCache(SCALE)


class TestTraceCache:
    def test_traces_cached(self, cache):
        t1 = cache.trace("mcf")
        t2 = cache.trace("mcf")
        assert t1 is t2

    def test_unknown_workload(self, cache):
        with pytest.raises(KeyError):
            cache.trace("nope")


class TestRunModel:
    def test_all_models_run(self, cache):
        trace = cache.trace("crafty")
        for model in ("inorder", "multipass", "runahead", "ooo",
                      "ooo-realistic", "multipass-noregroup",
                      "multipass-norestart"):
            stats = run_model(model, trace)
            assert stats.instructions == len(trace), model
            assert sum(stats.cycle_breakdown.values()) == stats.cycles

    def test_unknown_model(self, cache):
        with pytest.raises(KeyError):
            run_model("pentium5", cache.trace("crafty"))

    def test_custom_config(self, cache):
        trace = cache.trace("mcf")
        config = MachineConfig().with_hierarchy(config2_hierarchy())
        stats = run_model("inorder", trace, config)
        assert stats.cycles > 0


class TestMatrix:
    @pytest.fixture(scope="class")
    def matrix(self, cache):
        return run_matrix(("inorder", "multipass"), workloads=WORKLOADS,
                          cache=cache)

    def test_contents(self, matrix):
        assert set(matrix.workloads()) == set(WORKLOADS)
        assert set(matrix.models()) == {"inorder", "multipass"}

    def test_speedup(self, matrix):
        for workload in WORKLOADS:
            assert matrix.speedup(workload, "inorder") == 1.0
            assert matrix.speedup(workload, "multipass") > 0.5

    def test_reports_render(self, matrix):
        text = fig6_table(matrix, models=("inorder", "multipass"))
        assert "mcf" in text and "multipass" in text
        table = speedup_table(matrix, ("multipass",))
        assert "geomean" in table

    def test_summarize_headline(self, matrix):
        summary = summarize_headline(matrix)
        assert "mp_speedup_geomean" in summary
        assert summary["mp_speedup_geomean"] > 0.5

    def test_stall_reduction_bounds(self, matrix):
        for workload in WORKLOADS:
            r = stall_reduction(matrix.get(workload, "multipass"),
                                matrix.get(workload, "inorder"))
            assert r <= 1.0


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestFigureDrivers:
    def test_figure6_small(self, cache):
        result = figure6(scale=SCALE, workloads=WORKLOADS, cache=cache)
        assert "multipass speedup" in result.text
        assert result.data["mp_speedup_geomean"] > 0.5
        matrix = result.data["matrix"]
        assert set(matrix.workloads()) == set(WORKLOADS)

    def test_figure8_small(self, cache):
        result = figure8(scale=SCALE, workloads=("mcf",), cache=cache)
        row = result.data["per_workload"]["mcf"]
        assert 0.0 <= row["norestart_retained"] <= 1.5
        assert "no-restart" in result.text

    def test_table1_small(self, cache):
        result = table1(scale=SCALE, workload="mcf", cache=cache)
        assert set(result.data["peak"]) == {
            "registers", "scheduling", "memory-ordering"}
        for ratio in result.data["average"].values():
            assert ratio > 0
