"""Tests for the ASCII chart helpers and the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main as cli_main
from repro.harness import (TraceCache, fig6_chart, mode_strip, run_matrix,
                           speedup_bars, stacked_bar)
from repro.multipass import Mode, MultipassCore


@pytest.fixture(scope="module")
def small_matrix():
    cache = TraceCache(0.05)
    return run_matrix(("inorder", "multipass", "ooo"),
                      workloads=("mcf",), cache=cache), cache


class TestCharts:
    def test_stacked_bar_length_tracks_total(self, small_matrix):
        matrix, _ = small_matrix
        base = matrix.get("mcf", "inorder")
        mp = matrix.get("mcf", "multipass")
        base_bar = stacked_bar(base, base.cycles, width=60)
        mp_bar = stacked_bar(mp, base.cycles, width=60)
        assert 57 <= len(base_bar) <= 63      # rounding slack
        assert len(mp_bar) < len(base_bar)    # multipass is faster

    def test_stacked_bar_rejects_bad_baseline(self, small_matrix):
        matrix, _ = small_matrix
        with pytest.raises(ValueError):
            stacked_bar(matrix.get("mcf", "inorder"), 0)

    def test_fig6_chart_renders(self, small_matrix):
        matrix, _ = small_matrix
        text = fig6_chart(matrix)
        assert "mcf" in text and "|" in text

    def test_speedup_bars(self):
        text = speedup_bars({"multipass": 1.5, "ooo": 3.0})
        assert "multipass" in text
        assert text.count("#") > 10

    def test_speedup_bars_empty(self):
        assert "no data" in speedup_bars({})

    def test_mode_strip(self, small_matrix):
        _, cache = small_matrix
        core = MultipassCore(cache.trace("mcf"), record_modes=True)
        core.run()
        strip = mode_strip(core.mode_log)
        assert "|" in strip
        assert any(g in strip for g in ("A", "R", "-"))

    def test_mode_strip_empty(self):
        assert "not enabled" in mode_strip([])


class TestCLI:
    def test_workloads_command(self, capsys):
        assert cli_main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "CINT2000" in out

    def test_models_command(self, capsys):
        assert cli_main(["models"]) == 0
        out = capsys.readouterr().out
        assert "multipass" in out and "twopass" in out

    def test_compare_command(self, capsys):
        assert cli_main(["compare", "crafty", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "ooo-realistic" in out

    def test_simulate_command(self, capsys):
        assert cli_main(["simulate", "crafty", "--scale", "0.05",
                         "--models", "multipass"]) == 0
        out = capsys.readouterr().out
        assert "multipass/crafty" in out

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            cli_main(["simulate", "nonesuch"])
