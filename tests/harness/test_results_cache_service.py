"""Cache features the sweep service leans on: LRU bound, safe counters.

Covers the size-bounded eviction path (true LRU — hits refresh an
entry's clock), the ``flock``-serialized lifetime counters under
concurrent writers, corrupt-sidecar recovery, and the human/machine
size rendering behind ``repro cache stats``.
"""

import json
import os
import threading

import pytest

from repro.harness.results_cache import (ResultsCache, human_bytes,
                                         parse_size)

TD = "cache-test-digest"


def _key(i: int) -> str:
    return f"{i:064x}"


def _fill(cache: ResultsCache, count: int, payload: int = 1000):
    """Store ``count`` entries and give them strictly increasing ages
    (entry 0 oldest).  Returns the per-entry on-disk size."""
    for i in range(count):
        cache.put(_key(i), b"x" * payload)
    base = 1_700_000_000
    for i in range(count):
        path = cache._path(_key(i))
        os.utime(path, (base + i, base + i))
    return cache._path(_key(0)).stat().st_size


class TestLruEviction:
    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ResultsCache(tmp_path, tree_digest=TD)
        _fill(cache, 4)
        assert cache.evict() == 0
        assert len(cache) == 4

    def test_under_limit_no_eviction(self, tmp_path):
        cache = ResultsCache(tmp_path, tree_digest=TD)
        entry = _fill(cache, 3)
        cache.max_bytes = 4 * entry
        assert cache.evict() == 0
        assert len(cache) == 3

    def test_evicts_oldest_first_until_under_bound(self, tmp_path):
        cache = ResultsCache(tmp_path, tree_digest=TD)
        entry = _fill(cache, 4)
        cache.max_bytes = 2 * entry
        assert cache.evict() == 2
        assert cache.get(_key(0)) is None
        assert cache.get(_key(1)) is None
        assert cache.get(_key(2)) is not None
        assert cache.get(_key(3)) is not None
        assert cache.stats.evictions == 2
        assert cache._lifetime()["evictions"] == 2

    def test_hits_refresh_the_lru_clock(self, tmp_path):
        cache = ResultsCache(tmp_path, tree_digest=TD)
        entry = _fill(cache, 3)
        # Touch the oldest entry: a hit must move it to the young end,
        # sacrificing entry 1 instead.
        assert cache.get(_key(0)) is not None
        cache.max_bytes = 2 * entry
        assert cache.evict() == 1
        assert cache.get(_key(1)) is None
        assert cache.get(_key(0)) is not None
        assert cache.get(_key(2)) is not None

    def test_put_triggers_eviction_automatically(self, tmp_path):
        cache = ResultsCache(tmp_path, tree_digest=TD)
        entry = _fill(cache, 2)
        cache.max_bytes = 2 * entry
        cache.put(_key(7), b"x" * 1000)
        # The store itself enforced the bound: oldest entry gone.
        assert len(cache) == 2
        assert cache.get(_key(0)) is None
        assert cache.get(_key(7)) is not None

    def test_constructor_accepts_human_sizes(self, tmp_path):
        cache = ResultsCache(tmp_path, tree_digest=TD, max_bytes="2K")
        assert cache.max_bytes == 2048


class TestConcurrentCounters:
    def test_parallel_bumps_are_never_lost(self, tmp_path):
        cache = ResultsCache(tmp_path, tree_digest=TD)
        per_thread, threads = 25, 8

        def bump():
            for _ in range(per_thread):
                cache._bump_lifetime(hits=1)

        workers = [threading.Thread(target=bump)
                   for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert cache._lifetime()["hits"] == per_thread * threads

    def test_two_instances_share_one_ledger(self, tmp_path):
        a = ResultsCache(tmp_path, tree_digest=TD)
        b = ResultsCache(tmp_path, tree_digest=TD)
        a._bump_lifetime(stores=2)
        b._bump_lifetime(stores=3)
        assert a._lifetime()["stores"] == 5
        assert b._lifetime()["stores"] == 5


class TestCorruptSidecar:
    @pytest.mark.parametrize("junk", [
        b"not json at all", b"[1, 2, 3]", b'"hits"', b"{trunc",
    ])
    def test_corrupt_stats_file_resets_to_zero(self, tmp_path, junk):
        cache = ResultsCache(tmp_path, tree_digest=TD)
        (tmp_path / cache._STATS_FILE).write_bytes(junk)
        assert cache._lifetime() == {
            "hits": 0, "misses": 0, "stores": 0, "errors": 0,
            "evictions": 0}
        # Bumping on top of the wreck recovers a clean ledger.
        cache._bump_lifetime(hits=1)
        assert cache._lifetime()["hits"] == 1

    def test_non_integer_counter_values_reset(self, tmp_path):
        cache = ResultsCache(tmp_path, tree_digest=TD)
        (tmp_path / cache._STATS_FILE).write_text(
            json.dumps({"hits": "zebra", "misses": 4,
                        "stores": None}))
        life = cache._lifetime()
        assert life["hits"] == 0
        assert life["misses"] == 4
        assert life["stores"] == 0


class TestSizeRendering:
    @pytest.mark.parametrize("text,expected", [
        (512, 512), ("512", 512), ("512b", 512), ("1k", 1024),
        ("1K", 1024), ("1.5k", 1536), ("512M", 512 * 1024 ** 2),
        ("2GiB", 2 * 1024 ** 3), ("1tb", 1024 ** 4),
    ])
    def test_parse_size_accepts_human_strings(self, text, expected):
        assert parse_size(text) == expected

    def test_parse_size_none_means_unbounded(self):
        assert parse_size(None) is None

    @pytest.mark.parametrize("bad", ["zebra", "", "5x", "-5", "0",
                                     0, -1])
    def test_parse_size_rejects_junk_loudly(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    @pytest.mark.parametrize("size,expected", [
        (0, "0 B"), (512, "512 B"), (1536, "1.5 KiB"),
        (1024 ** 2, "1.0 MiB"), (3 * 1024 ** 3, "3.0 GiB"),
        (2 * 1024 ** 4, "2.0 TiB"),
    ])
    def test_human_bytes(self, size, expected):
        assert human_bytes(size) == expected


class TestDescribe:
    def test_describe_dict_shape(self, tmp_path):
        cache = ResultsCache(tmp_path, tree_digest=TD, max_bytes="1M")
        cache.put(_key(0), b"payload")
        assert cache.get(_key(0)) == b"payload"
        assert cache.get(_key(1)) is None
        doc = cache.describe_dict()
        assert doc["root"] == str(tmp_path)
        assert doc["entries"] == 1
        assert doc["size_bytes"] > 0
        assert doc["size_human"] == human_bytes(doc["size_bytes"])
        assert doc["max_bytes"] == 1024 ** 2
        assert doc["source_digest"] == TD
        assert doc["lifetime"]["hits"] == 1
        assert doc["lifetime"]["misses"] == 1
        assert doc["lifetime_hit_rate"] == 0.5
        assert doc["session"] == cache.stats.to_dict()
        # The whole document is JSON-serializable (health endpoint).
        json.dumps(doc)

    def test_describe_mentions_bound_and_evictions(self, tmp_path):
        cache = ResultsCache(tmp_path, tree_digest=TD, max_bytes=2048)
        text = cache.describe()
        assert "2.0 KiB" in text
        assert "eviction(s)" in text
        unbounded = ResultsCache(tmp_path, tree_digest=TD)
        assert "unbounded" in unbounded.describe()
