"""Unit contracts of the benchmark comparison helpers.

The wall-clock numbers themselves are machine-dependent and live in the
recorded ``BENCH_PR<n>.json`` trajectory; what the tests can pin is the
comparison logic the check.sh perf gate runs on them: the total
wall-clock gate, the deterministic cycle-drift detector, and the
per-model throughput gate behind ``repro bench --compare``.
"""

from repro.harness.bench import compare_bench, compare_speedups


def _record(per_model, workloads=("vpr", "mcf", "equake")):
    total_cps = sum(m["cycles_per_second"] for m in per_model.values())
    total_wall = sum(m["wall_seconds"] for m in per_model.values())
    return {
        "schema": "repro-bench/1",
        "models": list(per_model),
        "workloads": list(workloads),
        "per_model": per_model,
        "total": {
            "wall_seconds": round(total_wall, 4),
            "cycles": sum(m["cycles"] for m in per_model.values()),
            "cycles_per_second": total_cps,
        },
    }


def _model(wall, cycles):
    return {
        "wall_seconds": wall,
        "cycles": cycles,
        "cycles_per_second": round(cycles / wall),
    }


def test_compare_bench_passes_within_budget():
    base = _record({"multipass": _model(1.0, 100000)})
    cur = _record({"multipass": _model(1.2, 100000)})
    assert compare_bench(cur, base, max_regression=0.25) == []


def test_compare_bench_flags_total_regression_and_cycle_drift():
    base = _record({"multipass": _model(1.0, 100000)})
    slow = _record({"multipass": _model(1.5, 100000)})
    findings = compare_bench(slow, base, max_regression=0.25)
    assert len(findings) == 1 and "wall-clock regressed" in findings[0]

    drifted = _record({"multipass": _model(1.0, 99999)})
    findings = compare_bench(drifted, base, max_regression=0.25)
    assert len(findings) == 1 and "cycle count drifted" in findings[0]


def test_compare_speedups_reports_per_model_ratios():
    base = _record({"multipass": _model(1.0, 100000),
                    "ooo": _model(1.0, 200000)})
    cur = _record({"multipass": _model(0.4, 100000),
                   "ooo": _model(1.0, 200000)})
    lines, regressions = compare_speedups(cur, base)
    assert regressions == []
    assert any("multipass" in line and "2.50x" in line for line in lines)
    assert any("ooo" in line and "1.00x" in line for line in lines)
    assert any(line.strip().startswith("total") for line in lines)


def test_compare_speedups_gates_per_model_throughput():
    """A single model regressing past the floor fails the gate even if
    the totals stay within budget — the check.sh multipass cell."""
    base = _record({"multipass": _model(1.0, 100000),
                    "inorder": _model(0.1, 160000)})
    cur = _record({"multipass": _model(2.0, 100000),
                   "inorder": _model(0.1, 160000)})
    lines, regressions = compare_speedups(cur, base, max_regression=0.25)
    assert len(regressions) == 1
    assert "multipass" in regressions[0]
    assert "0.50x" in regressions[0]


def test_compare_speedups_tolerates_mismatched_matrices():
    """Smoke records are comparable against full-matrix baselines: the
    ratio basis is cycles/second, with an explicit note."""
    base = _record({"multipass": _model(10.0, 1000000)},
                   workloads=tuple(f"wl{i}" for i in range(12)))
    cur = _record({"multipass": _model(0.1, 50000)})
    lines, regressions = compare_speedups(cur, base)
    assert regressions == []
    assert any("matrices differ" in line for line in lines)


def test_compare_speedups_skips_models_without_baseline():
    base = _record({"multipass": _model(1.0, 100000)})
    cur = _record({"multipass": _model(1.0, 100000),
                   "runahead": _model(1.0, 100000)})
    lines, regressions = compare_speedups(cur, base)
    assert regressions == []
    assert any("runahead" in line and "no baseline" in line
               for line in lines)
