"""Fault handling: a bad cell degrades to a failure row, never a hang.

The injected runners below must be module-level functions: the engine
pickles the runner by reference into its worker processes.
"""

import time

import pytest

from repro.harness import SweepError, run_matrix
from repro.harness.parallel import simulate_cell, sweep

SCALE = 0.05
WORKLOADS = ("vpr", "parser")
MODELS = ("inorder", "multipass")


def _boom(spec):
    if spec.workload == "vpr" and spec.model == "multipass":
        raise RuntimeError("injected fault")
    return simulate_cell(spec)


def _flaky_for_sleep(spec):
    if spec.model == "multipass":
        time.sleep(60)
    return simulate_cell(spec)


def test_raising_cell_records_failure_row_and_retry():
    report = sweep(MODELS, WORKLOADS, scale=SCALE, jobs=2, runner=_boom)
    assert not report.ok
    [failure] = report.failures
    assert (failure.workload, failure.model) == ("vpr", "multipass")
    assert "RuntimeError: injected fault" in failure.error
    assert failure.attempts == 2, "failed cell must be retried once"
    # Every other cell still completed and landed in the matrix.
    assert ("vpr", "multipass") not in report.matrix.results
    good = [c for c in ((w, m) for w in WORKLOADS for m in MODELS)
            if c != ("vpr", "multipass")]
    for cell in good:
        assert cell in report.matrix.results
    assert report.simulated == len(good)
    # The operator-facing summary is non-zero/loud about it.
    assert "1 failed" in report.summary()
    assert "vpr/multipass" in report.summary()


def test_raising_cell_serial_path():
    report = sweep(MODELS, ("vpr",), scale=SCALE, jobs=1, runner=_boom)
    assert not report.ok
    [failure] = report.failures
    assert failure.attempts == 2


def test_wedged_cell_times_out_and_is_recorded():
    report = sweep(MODELS, ("vpr",), scale=SCALE, jobs=2, timeout=1.0,
                   runner=_flaky_for_sleep)
    assert not report.ok
    [failure] = report.failures
    assert (failure.workload, failure.model) == ("vpr", "multipass")
    assert "timed out after 1s" in failure.error
    assert failure.attempts == 2
    # The healthy cell on the same grid completed under the same timer.
    assert ("vpr", "inorder") in report.matrix.results


# run_matrix has no runner hook, so inject the fault by swapping the
# default runner the engine resolves at call time.
def test_run_matrix_raises_on_persistent_failure(monkeypatch):
    import repro.harness.parallel as parallel_mod
    monkeypatch.setattr(parallel_mod, "simulate_cell", _boom)
    with pytest.raises(SweepError, match="injected fault"):
        run_matrix(MODELS, ("vpr",), scale=SCALE, parallel=2)
