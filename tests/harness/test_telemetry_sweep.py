"""Telemetry threading through the parallel sweep engine."""

from repro.harness import sweep
from repro.harness.results_cache import ResultsCache

MODELS = ["inorder", "multipass"]
WORKLOADS = ["vpr"]
SCALE = 0.05


def test_sweep_collects_per_cell_summaries():
    report = sweep(MODELS, WORKLOADS, scale=SCALE, jobs=1,
                   telemetry=True)
    assert report.ok
    assert set(report.telemetry) == {("vpr", "inorder"),
                                     ("vpr", "multipass")}
    for cell, summary in report.telemetry.items():
        assert summary["last_cycle"] > 0
        assert summary["counters"]["events.commit"] > 0
    mp = report.telemetry[("vpr", "multipass")]["counters"]
    assert any(k.startswith("mode_cycles.") for k in mp)


def test_telemetry_does_not_change_stats():
    plain = sweep(MODELS, WORKLOADS, scale=SCALE, jobs=1)
    traced = sweep(MODELS, WORKLOADS, scale=SCALE, jobs=1,
                   telemetry=True)
    for cell, stats in plain.matrix.results.items():
        other = traced.matrix.results[cell]
        assert (stats.cycles, stats.instructions,
                stats.cycle_breakdown) == \
            (other.cycles, other.instructions, other.cycle_breakdown)


def test_telemetry_sweeps_bypass_cache_reads_but_still_store(tmp_path):
    store = ResultsCache(tmp_path / "cache")
    warm = sweep(MODELS, WORKLOADS, scale=SCALE, jobs=1,
                 results_cache=store)
    assert warm.cache_stores == len(MODELS)

    traced = sweep(MODELS, WORKLOADS, scale=SCALE, jobs=1,
                   results_cache=store, telemetry=True)
    # A warm cache is ignored for reads: summaries need live runs.
    assert traced.cache_hits == 0
    assert traced.simulated == len(MODELS)
    assert len(traced.telemetry) == len(MODELS)

    # ...and the cache still serves an untraced sweep afterwards.
    cold = sweep(MODELS, WORKLOADS, scale=SCALE, jobs=1,
                 results_cache=store)
    assert cold.cache_hits == len(MODELS)
    assert cold.simulated == 0
    assert cold.telemetry == {}


def test_parallel_telemetry_summaries_cross_process():
    report = sweep(MODELS, WORKLOADS, scale=SCALE, jobs=2,
                   telemetry=True)
    assert report.ok
    assert len(report.telemetry) == len(MODELS)
    for summary in report.telemetry.values():
        assert summary["counters"]["events.commit"] > 0
