"""Determinism and cache-equivalence contracts of the parallel engine.

The whole point of the sharded engine is that it is an *optimization*,
never a semantic change: a parallel sweep, a cold cached sweep and a
warm cached sweep must all produce stats bit-identical to plain serial
``run_matrix`` (SimStats dataclass equality covers cycles, the stall
breakdown, counters, memory-hierarchy stats and branch accuracy).
"""

from repro.harness import (MODEL_FACTORIES, ResultsCache, run_matrix,
                           sweep)
from repro.workloads import ALL_WORKLOADS

SCALE = 0.05
WORKLOADS = ("vpr", "parser")
MODELS = ("inorder", "multipass", "ooo")


def test_parallel_matches_serial():
    serial = run_matrix(MODELS, WORKLOADS, scale=SCALE)
    parallel = run_matrix(MODELS, WORKLOADS, scale=SCALE, parallel=4)
    assert parallel.scale == serial.scale
    assert parallel.results == serial.results


def test_parallel_includes_ablations():
    models = MODELS + ("multipass-norestart", "twopass")
    serial = run_matrix(models, ("vpr",), scale=SCALE)
    parallel = run_matrix(models, ("vpr",), scale=SCALE, parallel=2)
    assert parallel.results == serial.results


def test_warm_cache_hit_matches_cold_miss(tmp_path):
    serial = run_matrix(MODELS, WORKLOADS, scale=SCALE)

    cold_store = ResultsCache(tmp_path)
    cold = run_matrix(MODELS, WORKLOADS, scale=SCALE, parallel=2,
                      results_cache=cold_store)
    cells = len(MODELS) * len(WORKLOADS)
    assert cold_store.stats.misses == cells
    assert cold_store.stats.stores == cells
    assert cold.results == serial.results

    warm_store = ResultsCache(tmp_path)
    warm = run_matrix(MODELS, WORKLOADS, scale=SCALE,
                      results_cache=warm_store)
    assert warm_store.stats.hits == cells
    assert warm_store.stats.misses == 0
    assert warm.results == serial.results


def test_warm_cache_full_default_matrix_zero_simulations(tmp_path):
    """Acceptance criterion: a second sweep over the full default matrix
    (every workload x every primary model) performs zero simulations."""
    models = sorted(MODEL_FACTORIES)
    cells = len(models) * len(ALL_WORKLOADS)

    cold = sweep(models, scale=SCALE, jobs=2,
                 results_cache=ResultsCache(tmp_path))
    assert cold.ok
    assert cold.simulated == cells
    assert cold.cache_hits == 0

    warm_store = ResultsCache(tmp_path)
    warm = sweep(models, scale=SCALE, jobs=2, results_cache=warm_store)
    assert warm.ok
    assert warm.simulated == 0
    assert warm.cache_hits == cells
    assert warm_store.stats.hits == cells
    assert warm.matrix.results == cold.matrix.results


def test_corrupt_cache_entry_degrades_to_miss(tmp_path):
    store = ResultsCache(tmp_path)
    run_matrix(MODELS, ("vpr",), scale=SCALE, results_cache=store)
    victim = next(iter(store.entries()))
    victim.write_bytes(b"not a pickle")

    reread = ResultsCache(tmp_path)
    matrix = run_matrix(MODELS, ("vpr",), scale=SCALE,
                        results_cache=reread)
    assert reread.stats.misses == 1
    assert reread.stats.errors == 1
    assert reread.stats.hits == len(MODELS) - 1
    assert matrix.results == run_matrix(MODELS, ("vpr",),
                                        scale=SCALE).results


def test_serial_sweep_decodes_once_per_workload_cell(monkeypatch):
    """jobs=1 path: every model of a (workload, scale) cell reuses one
    decoded trace — the decode-build log records exactly one build per
    cell, not one per model."""
    from repro.harness import parallel

    monkeypatch.setattr(parallel, "_WORKER_TRACES", {})
    monkeypatch.setattr(parallel, "_DECODE_BUILDS", {})
    report = sweep(MODELS, WORKLOADS, scale=SCALE, jobs=1)
    assert report.ok
    assert parallel._DECODE_BUILDS == {
        (workload, SCALE): 1 for workload in WORKLOADS
    }


def test_pool_sweep_decodes_once_per_workload_cell(tmp_path, monkeypatch):
    """Pool path: grouped dispatch lands every model of a workload on
    the same worker, so across the whole fleet each (workload, scale)
    is decoded exactly once."""
    import multiprocessing
    import os

    import pytest

    from repro.harness import parallel

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("decode log instrumentation needs fork inheritance")

    log = tmp_path / "decodes.log"
    original = parallel._worker_trace

    def logged(spec):
        cell = (spec.workload, spec.scale)
        before = parallel._DECODE_BUILDS.get(cell, 0)
        trace = original(spec)
        built = parallel._DECODE_BUILDS.get(cell, 0) - before
        with open(log, "a") as fh:
            fh.write(f"{os.getpid()} {spec.workload} {built}\n")
        return trace

    # Fork inherits the patched module state and the cleared caches, so
    # worker-side builds start from a clean slate and hit the wrapper.
    monkeypatch.setattr(parallel, "_WORKER_TRACES", {})
    monkeypatch.setattr(parallel, "_DECODE_BUILDS", {})
    monkeypatch.setattr(parallel, "_worker_trace", logged)

    report = sweep(MODELS, WORKLOADS, scale=SCALE, jobs=2)
    assert report.ok

    builds = {workload: 0 for workload in WORKLOADS}
    pids = {workload: set() for workload in WORKLOADS}
    for line in log.read_text().splitlines():
        pid, workload, built = line.split()
        builds[workload] += int(built)
        pids[workload].add(pid)
    for workload in WORKLOADS:
        assert builds[workload] == 1, (workload, builds)
        assert len(pids[workload]) == 1, (workload, pids)
