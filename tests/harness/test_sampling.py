"""Tests for SMARTS-style sampled simulation."""

import pytest

from repro.harness import TraceCache, run_model, sampled_simulation


@pytest.fixture(scope="module")
def trace():
    return TraceCache(0.25).trace("gzip")


def test_estimates_baseline_cpi(trace):
    full = run_model("inorder", trace)
    result = sampled_simulation(trace, "inorder", n_units=15,
                                unit_size=300)
    full_cpi = full.cycles / len(trace)
    # SMARTS-grade accuracy on the in-order machine: within 15 %.
    assert result.estimated_cpi == pytest.approx(full_cpi, rel=0.15)
    assert result.n_units == 15
    assert len(result.unit_cpis) == 15


def test_confidence_interval_reported(trace):
    result = sampled_simulation(trace, "inorder", n_units=10,
                                unit_size=300)
    assert result.ci95 >= 0
    assert 0 <= result.relative_ci < 1.0
    assert "CPI" in result.summary()


def test_more_units_do_not_hurt(trace):
    full_cpi = run_model("inorder", trace).cycles / len(trace)
    few = sampled_simulation(trace, "inorder", n_units=5, unit_size=300)
    many = sampled_simulation(trace, "inorder", n_units=20, unit_size=300)
    assert abs(many.estimated_cpi - full_cpi) <= \
        abs(few.estimated_cpi - full_cpi) + 0.3


def test_works_for_multipass(trace):
    """The multipass estimate carries cold-episode bias at unit edges but
    must stay in the right regime (faster than in-order)."""
    base = sampled_simulation(trace, "inorder", n_units=10, unit_size=300)
    mp = sampled_simulation(trace, "multipass", n_units=10, unit_size=300)
    assert mp.estimated_cpi < base.estimated_cpi


def test_rejects_oversampling(trace):
    with pytest.raises(ValueError):
        sampled_simulation(trace, "inorder", n_units=1000,
                           unit_size=10_000)


def test_rejects_unknown_model(trace):
    with pytest.raises(KeyError):
        sampled_simulation(trace, "cray-1")


def test_estimated_cycles_scale(trace):
    result = sampled_simulation(trace, "inorder", n_units=10,
                                unit_size=300)
    assert result.estimated_cycles == pytest.approx(
        result.estimated_cpi * len(trace))
    assert result.full_instructions == len(trace)
