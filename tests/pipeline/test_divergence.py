"""Unified ``max_cycles`` divergence handling across all five cores.

Every run loop routes its budget check through
``BaseCore.check_cycle_budget``, so a runaway simulation raises
:class:`SimulationDiverged` with the model name, the budget, the cycle
it tripped at and the workload — regardless of model and regardless of
whether the stall fast-forward jumped the clock past the budget.
"""

import pytest

from repro.harness.experiment import MODEL_FACTORIES, TraceCache
from repro.pipeline import SimulationDiverged

MODELS = sorted(MODEL_FACTORIES)


@pytest.fixture(scope="module")
def trace():
    return TraceCache(scale=0.05).trace("vpr")


@pytest.mark.parametrize("model", MODELS)
def test_budget_overrun_raises_with_context(model, trace):
    core = MODEL_FACTORIES[model](trace, None)
    with pytest.raises(SimulationDiverged) as excinfo:
        core.run(max_cycles=3)
    message = str(excinfo.value)
    assert core.model_name in message
    assert "max_cycles=3" in message
    assert "at cycle" in message
    assert trace.program.name in message


@pytest.mark.parametrize("model", MODELS)
def test_budget_overrun_raises_in_slow_mode(model, trace):
    """The reference loop shares the same divergence path."""
    core = MODEL_FACTORIES[model](trace, None, slow=True)
    with pytest.raises(SimulationDiverged) as excinfo:
        core.run(max_cycles=3)
    assert core.model_name in str(excinfo.value)


@pytest.mark.parametrize("model", MODELS)
def test_sufficient_budget_completes(model, trace):
    stats = MODEL_FACTORIES[model](trace, None).run()
    assert stats.cycles > 3
