"""Seeded regression for the idle-skip (fast-forward overshoot) bug class.

The PR 5 ooo idle-skip bug: a fast-forward span was allowed to jump the
clock past a cycle on which an in-flight event (a fill completion, a
wake-up, a fetch resume) landed, because the skip bound was computed
before the event was scheduled — the event arrived *exactly one cycle
after the proposed skip start*, the worst-case alignment.

These programs are built to reproduce that alignment deliberately: a
cold load opens a main-memory-latency stall span (the skip trigger),
and a sweep of single-cycle filler instructions shifts every subsequent
event — the consumer's wake-up, a second staggered miss, its fill —
cycle by cycle across the span boundary.  Somewhere in the sweep each
event lands exactly on the first skipped cycle; a skip that overshoots
by even one cycle drifts the cycle count or the stall attribution and
fails the differential against the ``slow=True`` reference, which never
skips.

Asserted for every registered model (all of them fast-forward through
``BaseCore.next_event_cycle`` or, for the OOO cores, the columnar
kernel's span logic).
"""

import pytest

from repro.compiler import compile_program
from repro.harness import ABLATION_FACTORIES, MODEL_FACTORIES, run_model
from repro.isa import P, ProgramBuilder, R, execute

ALL_MODELS = sorted({**MODEL_FACTORIES, **ABLATION_FACTORIES})

#: Filler sweep: wide enough to slide events across a whole issue group
#: plus the span boundary on either side.
PADS = range(0, 9)

#: Second-load placement: same line as the first (serves from the
#: in-flight fill — the "event lands mid-span" case), the next line
#: (an independent overlapping miss) and two lines out.
GAPS = (4, 64, 128)


def _boundary_program(pad: int, gap: int):
    """A cold miss, ``pad`` cycles of slide, then dependent wake-ups."""
    b = ProgramBuilder(f"idle-skip-p{pad}-g{gap}")
    b.movi(R(12), 0x1000)
    b.movi(R(1), 1)
    b.ld(R(2), R(12), 0)          # cold load: main-memory latency
    for _ in range(pad):          # slide the alignment one cycle at a time
        b.addi(R(1), R(1), 1)
    b.add(R(3), R(2), R(1))       # consumer: wakes exactly at the fill
    b.ld(R(4), R(12), gap)        # staggered second miss / pending hit
    b.add(R(5), R(4), R(3))
    b.cmplti(P(1), R(5), 0)
    b.addi(R(6), R(5), 1, pred=P(1))
    b.halt()
    return execute(compile_program(b.build()))


def _comparable(stats):
    return (stats.cycles, stats.instructions, dict(stats.cycle_breakdown),
            dict(stats.counters), stats.branch_accuracy)


@pytest.mark.parametrize("model", ALL_MODELS)
def test_skip_never_jumps_a_boundary_event(model):
    for gap in GAPS:
        for pad in PADS:
            trace = _boundary_program(pad, gap)
            fast = run_model(model, trace)
            slow = run_model(model, trace, slow=True)
            assert _comparable(fast) == _comparable(slow), (
                f"{model}: fast path diverged from the per-cycle "
                f"reference at pad={pad} gap={gap} — a fast-forward "
                f"span jumped an event that landed on a skipped cycle")


def _wakeup_boundary_program(pad: int):
    """A visibility event (completion + wakeup_delay) on the span edge.

    The realistic OOO core pays one wakeup-loop cycle: a consumer sees
    its producer at ``ready_cycle + 1``, so every wake-up event in the
    calendar sits one cycle later than on the ideal core.  This shape
    opens a main-memory idle span with a cold load and floats a slow
    MULDIV chain across it: the div's *shifted* visibility event is the
    first event after the skip starts for some ``pad`` in the sweep —
    off-by-one in either direction (folding the delay into the event
    time, or capping a skip with the unshifted completion) diverges
    from the never-skipping reference.
    """
    b = ProgramBuilder(f"wakeup-boundary-p{pad}")
    b.movi(R(12), 0x2000)
    b.movi(R(1), 7)
    b.movi(R(2), 3)
    b.ld(R(3), R(12), 0)          # cold load: opens the idle span
    for _ in range(pad):          # slide the div completion cycle
        b.addi(R(1), R(1), 1)
    b.mul(R(4), R(1), R(2))       # slow chain started before the span
    b.div(R(5), R(4), R(2))
    b.add(R(6), R(5), R(5))       # wakes at div ready + wakeup_delay
    b.add(R(7), R(6), R(3))       # joins the fill: wakes at the later
    b.addi(R(8), R(7), 1)         # of fill/chain visibility
    b.halt()
    return execute(compile_program(b.build()))


@pytest.mark.parametrize("model", ("ooo", "ooo-realistic"))
def test_wakeup_delay_shifted_event_on_skip_boundary(model):
    """OOO cells where the +wakeup_delay event lands on a skipped cycle.

    Sweeping the pad slides the chain's visibility events one cycle at
    a time across the idle-span boundary; running both OOO cores pins
    both alignments (ideal ``wakeup_delay=0`` and realistic ``=1``
    place the same completion's event on adjacent cycles, so a sweep
    that is clean on one core and dirty on the other localizes the
    shift handling, not the span logic).
    """
    for pad in PADS:
        trace = _wakeup_boundary_program(pad)
        fast = run_model(model, trace)
        slow = run_model(model, trace, slow=True)
        assert _comparable(fast) == _comparable(slow), (
            f"{model}: fast path diverged from the per-cycle reference "
            f"at pad={pad} — a wakeup_delay-shifted visibility event "
            f"landed on a skipped cycle")


@pytest.mark.parametrize("model", ALL_MODELS)
def test_skip_sound_under_commit_verification(model):
    """The same sweep with architectural replay checking enabled.

    ``check=True`` cross-checks every commit against independent
    re-execution, so an overshooting skip that dropped or reordered a
    commit fails loudly here even if the aggregate stats happened to
    collide.
    """
    trace = _boundary_program(4, 64)
    stats = run_model(model, trace, check=True)
    assert stats.instructions == len(trace)
