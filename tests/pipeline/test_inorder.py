"""Tests for the baseline in-order core."""

import pytest

from repro.isa import P, R
from repro.machine import MachineConfig
from repro.pipeline import InOrderCore, StallCategory, simulate_inorder
from tests.conftest import build_trace


def run(body_fn, config=None, **kwargs):
    trace = build_trace(body_fn, **kwargs)
    return simulate_inorder(trace, config), trace


def test_independent_ops_issue_wide():
    def body(b):
        for i in range(1, 13):   # 12 independent movis
            b.movi(R(i), i)
        b.halt()

    stats, trace = run(body)
    # 13 instructions over >= 3 cycles (6-wide) but far fewer than 13.
    assert stats.instructions == len(trace)
    assert stats.cycles <= 6


def test_dependent_chain_serializes():
    def body(b):
        b.movi(R(1), 0)
        for _ in range(20):
            b.addi(R(1), R(1), 1)
        b.halt()

    stats, _ = run(body)
    assert stats.cycles >= 20


def test_load_miss_stall_on_use_not_on_miss():
    """Independent work after a missing load keeps executing (Fig. 1a)."""
    def body(b):
        b.movi(R(1), 0x10000)
        b.ld(R(2), R(1), 0)            # cold miss -> 145 cycles
        for i in range(3, 60):         # plenty of independent work
            b.movi(R(i), i)
        b.add(R(60), R(2), R(2))       # first consumer
        b.halt()

    stats, _ = run(body)
    assert stats.cycle_breakdown[StallCategory.LOAD] > 100
    # The independent movis all executed before the stall completed.
    assert stats.cycle_breakdown[StallCategory.EXECUTION] >= 10


def test_load_hit_after_warmup_is_fast():
    def body(b):
        b.movi(R(1), 0x10000)
        b.ld(R(2), R(1), 0)       # warm the line
        b.add(R(3), R(2), R(2))   # long stall once
        b.ld(R(4), R(1), 0)       # hit
        b.add(R(5), R(4), R(4))
        b.halt()

    stats, _ = run(body)
    # One trip to main memory only — the second load either hits the
    # filled line or merges into the in-flight fill.
    assert stats.memory.memory_accesses == 1


def test_multiply_stall_charged_other():
    def body(b):
        b.movi(R(1), 3)
        b.mul(R(2), R(1), R(1))
        b.add(R(3), R(2), R(2))   # stalls on the multiply
        b.halt()

    stats, _ = run(body)
    assert stats.cycle_breakdown[StallCategory.OTHER] >= 2
    assert stats.cycle_breakdown[StallCategory.LOAD] == 0


def test_loop_executes_all_iterations():
    def body(b):
        b.movi(R(1), 0)
        b.movi(R(2), 100)
        b.label("loop")
        b.addi(R(1), R(1), 1)
        b.cmplti(P(1), R(1), 100)
        b.br("loop", pred=P(1))
        b.halt()

    stats, trace = run(body)
    assert stats.instructions == len(trace)
    assert stats.cycles >= 100


def test_front_end_stall_on_mispredicts():
    """Data-dependent unpredictable branches cost front-end cycles."""
    def body(b):
        # LCG produces pseudo-random branch directions.
        b.movi(R(1), 12345)
        b.movi(R(2), 0)
        b.movi(R(3), 200)
        b.label("loop")
        b.movi(R(4), 1103515245)
        b.mul(R(1), R(1), R(4))
        b.addi(R(1), R(1), 12345)
        b.shri(R(5), R(1), 16)
        b.andi(R(6), R(5), 1)
        b.cmpeqi(P(1), R(6), 1)
        b.addi(R(2), R(2), 1, pred=P(1))
        b.cmpnei(P(3), R(6), 1)
        b.br("skip", pred=P(3))
        b.addi(R(2), R(2), 2)
        b.label("skip")
        b.subi(R(3), R(3), 1)
        b.cmplti(P(2), R(3), 1)
        b.cmpeqi(P(4), P(2), 0)
        b.br("loop", pred=P(4))
        b.halt()

    stats, _ = run(body)
    assert stats.counters["mispredicts"] > 10
    assert stats.cycle_breakdown[StallCategory.FRONT_END] > 0


def test_waw_scoreboard_stall():
    """A 1-cycle writer may not complete under an in-flight load miss."""
    def body(b):
        b.movi(R(1), 0x20000)
        b.ld(R(2), R(1), 0)       # miss, r2 ready late
        b.movi(R(2), 5)           # WAW with the load
        b.halt()

    stats, _ = run(body)
    assert stats.counters["waw_stalls"] >= 1


def test_stats_accounting_consistent():
    def body(b):
        b.movi(R(1), 0x30000)
        b.ld(R(2), R(1), 0)
        b.add(R(3), R(2), R(2))
        b.halt()

    stats, trace = run(body)
    assert sum(stats.cycle_breakdown.values()) == stats.cycles
    assert stats.instructions == len(trace)
    assert 0 < stats.ipc <= 6


def test_deterministic():
    def body(b):
        b.movi(R(1), 0x40000)
        b.movi(R(3), 50)
        b.label("loop")
        b.ld(R(2), R(1), 0)
        b.add(R(4), R(2), R(4))
        b.addi(R(1), R(1), 64)
        b.subi(R(3), R(3), 1)
        b.cmplti(P(1), R(3), 1)
        b.cmpeqi(P(2), P(1), 0)
        b.br("loop", pred=P(2))
        b.halt()

    (s1, _), (s2, _) = run(body), run(body)
    assert s1.cycles == s2.cycles
    assert s1.cycle_breakdown == s2.cycle_breakdown


def test_bigger_buffer_never_hurts():
    def body(b):
        b.movi(R(1), 0x50000)
        b.movi(R(3), 30)
        b.label("loop")
        b.ld(R(2), R(1), 0)
        b.add(R(4), R(2), R(4))
        b.addi(R(1), R(1), 128)
        b.subi(R(3), R(3), 1)
        b.cmplti(P(1), R(3), 1)
        b.cmpeqi(P(2), P(1), 0)
        b.br("loop", pred=P(2))
        b.halt()

    small, _ = run(body, config=MachineConfig(inorder_buffer_size=12))
    big, _ = run(body, config=MachineConfig(inorder_buffer_size=48))
    assert big.cycles <= small.cycles + 2


def test_ipc_bounded_by_width():
    def body(b):
        for outer in range(40):
            for i in range(1, 7):
                b.movi(R(i + (outer % 2) * 6), i)
        b.halt()

    stats, trace = run(body)
    assert stats.ipc <= 6.0 + 1e-9
