"""Unit and property tests for the shared event calendar (and the
issue-select discipline built on top of it).

:mod:`repro.pipeline.eventq` is the readable specification of the
wheel/heap idioms both columnar kernels open-code; these tests pin the
contract the kernels rely on:

* a near event drains exactly at its due cycle, including across
  64-cycle wheel wraps;
* far events are promoted out of the heap the moment their cycle comes
  due, never earlier;
* staleness is the caller's stamp — a squash never removes entries, it
  re-stamps the seq, and the stale entry surfaces (and is discardable)
  at the slot's next visit;
* an idle fast-forward bounded by the wake horizon never jumps a live
  entry — the slot still holds it when the clock lands on its cycle.

The last test class pins the gen-2 OOO kernel's *issue-select
discipline*: a single ascending ready queue with a dead-region head
pointer, mid-deletes only for port-starved skips, and ``insort`` above
the head must select exactly the seqs an oldest-first scalar scan with
the same port budgets would — in the same order — under arbitrary
arrival/budget interleavings (``docs/architecture.md`` §13).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.pipeline import WHEEL, EventCalendar
from repro.pipeline.eventq import WHEEL_MASK


class TestWheel:
    def test_near_event_drains_exactly_at_due_cycle(self):
        cal = EventCalendar()
        cal.schedule(7, now=3, entry=(7, "x"))
        for now in range(4, 7):
            assert cal.pop_due(now) == []
        assert cal.pop_due(7) == [(7, "x")]
        assert len(cal) == 0

    def test_wrap_lands_in_same_slot_different_era(self):
        # 60 -> 75 crosses the wheel origin; the slot index wraps but
        # the entry still surfaces exactly at 75.
        cal = EventCalendar()
        cal.schedule(75, now=60, entry=(75,))
        assert cal.slot(75 - WHEEL) == cal.wheel[75 & WHEEL_MASK]
        for now in range(61, 75):
            assert cal.pop_due(now) == []
        assert cal.pop_due(75) == [(75,)]

    def test_same_cycle_entries_keep_insertion_order(self):
        cal = EventCalendar()
        cal.schedule(9, now=8, entry=("a",))
        cal.schedule(9, now=8, entry=("b",))
        assert cal.pop_due(9) == [("a",), ("b",)]

    def test_horizon_boundary(self):
        # time - now == WHEEL - 1 is the last wheel-resident distance;
        # WHEEL goes to the heap.
        cal = EventCalendar()
        cal.schedule(WHEEL - 1, now=0, entry=(WHEEL - 1,))
        cal.schedule(WHEEL, now=0, entry=(WHEEL,))
        assert len(cal.heap) == 1
        assert cal.earliest_far() == WHEEL


class TestFarHeap:
    def test_promoted_exactly_when_due(self):
        cal = EventCalendar()
        cal.schedule(200, now=0, entry=(200, "fill"))
        assert cal.pop_due(199) == []
        assert cal.pop_due(200) == [(200, "fill")]
        assert cal.earliest_far() is None

    def test_pop_due_orders_wheel_before_heap(self):
        cal = EventCalendar()
        cal.schedule(100, now=0, entry=(100, "far"))
        cal.schedule(100, now=90, entry=("near",))
        assert cal.pop_due(100) == [("near",), (100, "far")]

    def test_late_visit_drains_every_overdue_far_event(self):
        # A fast-forwarding caller may first visit the heap cycles
        # after several far events came due; all of them surface.
        cal = EventCalendar()
        for t in (70, 80, 90):
            cal.schedule(t, now=0, entry=(t,))
        assert cal.pop_due(85) == [(70,), (80,)]
        assert cal.earliest_far() == 90


class TestStaleness:
    def test_squash_restamp_discards_at_drain(self):
        # The OOO kernel's squash protocol: bump the seq's generation,
        # leave the old entry in place.  The calendar surfaces both
        # eras; the caller's stamp check keeps exactly the live one.
        cal = EventCalendar()
        gen = 0
        cal.schedule(10, now=5, entry=(4, gen))
        gen += 1                          # squash seq 4
        cal.schedule(12, now=6, entry=(4, gen))      # reissue
        stale = [e for e in cal.pop_due(10) if e[1] == gen]
        assert stale == []                # old-era entry discarded
        live = [e for e in cal.pop_due(12) if e[1] == gen]
        assert live == [(4, 1)]

    def test_stale_entry_jumped_by_wrap_still_discardable(self):
        # Only stale entries may be jumped by a skip; when the slot
        # next comes around (one wrap later) the entry is still there
        # and still identifiably stale.
        cal = EventCalendar()
        cal.schedule(10, now=5, entry=(4, 0))
        # skip straight past cycle 10 without visiting the slot...
        assert cal.slot(10 + WHEEL) is cal.slot(10)
        assert cal.slot(10 + WHEEL) == [(4, 0)]     # ...it survives

    def test_clear_empties_everything(self):
        cal = EventCalendar()
        cal.schedule(3, now=0, entry=(3,))
        cal.schedule(500, now=0, entry=(500,))
        assert len(cal) == 2
        cal.clear()
        assert len(cal) == 0
        assert cal.earliest_far() is None


class TestIdleSkipInteraction:
    def test_skip_bounded_by_wake_horizon_never_jumps_live_entry(self):
        # An idle span fast-forwards from ``now`` to the earliest
        # in-flight completion (the wake horizon).  Every live entry
        # was inserted < WHEEL cycles before it fires, so landing the
        # clock exactly on the horizon finds the entry in its slot.
        cal = EventCalendar()
        now = 100
        wake = now + WHEEL - 1            # worst-case near distance
        cal.schedule(wake, now, entry=(wake, "wake"))
        # the skip visits no intermediate slot; the landing visit
        # drains the event exactly once
        assert cal.pop_due(wake) == [(wake, "wake")]
        assert cal.pop_due(wake + WHEEL) == []

    def test_far_event_caps_the_skip(self):
        # A skip past the wheel horizon consults earliest_far(); the
        # promoted entry then bounds the landing cycle.
        cal = EventCalendar()
        cal.schedule(300, now=0, entry=(300, "fill"))
        horizon = cal.earliest_far()
        assert horizon == 300
        assert cal.pop_due(horizon) == [(300, "fill")]


@st.composite
def schedules(draw):
    """(insert_cycle, due_cycle) pairs with kernel-shaped distances."""
    events = []
    now = 0
    for _ in range(draw(st.integers(min_value=1, max_value=40))):
        now += draw(st.integers(min_value=0, max_value=10))
        delay = draw(st.integers(min_value=1, max_value=200))
        events.append((now, now + delay))
    return events


class TestCalendarProperties:
    @given(schedules())
    @settings(max_examples=60, deadline=None)
    def test_every_entry_drains_exactly_at_its_due_cycle(self, events):
        cal = EventCalendar()
        pending = {}
        drained = {}
        horizon = max(due for _, due in events)
        inserts = iter(sorted(events))
        nxt = next(inserts, None)
        for now in range(0, horizon + 1):
            while nxt is not None and nxt[0] == now:
                key = len(drained) + len(pending)
                cal.schedule(nxt[1], now, entry=(nxt[1], key))
                pending[key] = nxt[1]
                nxt = next(inserts, None)
            for due, key in cal.pop_due(now):
                assert due == now, "entry drained off its cycle"
                assert pending.pop(key) == now
                drained[key] = now
        assert not pending, "entries never drained"
        assert len(cal) == 0


# ---------------------------------------------------------------------------
# Issue-select discipline: head-pointer ready queue vs oldest-first scan
# ---------------------------------------------------------------------------

#: Port classes as in repro.resources.PORT_CODE: MEM, ALU, FP, BR,
#: slot-only.
CODES = (0, 1, 2, 3, 4)


def _scalar_select(ready, codes, budgets, width, wlimit):
    """Oldest-first scalar reference: scan every ready seq ascending."""
    m_ports, i_ports, f_ports, b_ports = budgets
    m = i = f = b = 0
    picked = []
    for seq in sorted(ready):
        if seq > wlimit:
            break
        code = codes[seq]
        if code == 1:
            if i < i_ports:
                i += 1
            elif m < m_ports:
                m += 1
            else:
                continue
        elif code == 0:
            if m >= m_ports:
                continue
            m += 1
        elif code == 2:
            if f >= f_ports:
                continue
            f += 1
        elif code == 3:
            if b >= b_ports:
                continue
            b += 1
        picked.append(seq)
        if len(picked) >= width:
            break
    return picked


def _queue_select(rdy, hr, codes, budgets, width, wlimit):
    """The gen-2 kernel's queue discipline, verbatim shape.

    ``rdy[hr:]`` is the live ascending region; issued entries advance
    the head when they sit at it and are mid-deleted when a
    port-starved entry was skipped below the scan point.  Returns the
    picked seqs and the new head.
    """
    m_ports, i_ports, f_ports, b_ports = budgets
    m = i_used = f = b = 0
    picked = []
    i = hr
    rlen = len(rdy)
    while i < rlen:
        seq = rdy[i]
        if seq > wlimit:
            break
        code = codes[seq]
        if code == 1:
            if i_used < i_ports:
                i_used += 1
            elif m < m_ports:
                m += 1
            else:
                i += 1
                continue
        elif code == 0:
            if m < m_ports:
                m += 1
            else:
                i += 1
                continue
        elif code == 2:
            if f < f_ports:
                f += 1
            else:
                i += 1
                continue
        elif code == 3:
            if b < b_ports:
                b += 1
            else:
                i += 1
                continue
        if i == hr:
            i = hr = hr + 1
        else:
            del rdy[i]
            rlen -= 1
        picked.append(seq)
        if len(picked) >= width:
            break
    # compaction, as in the kernel
    if hr:
        if hr == rlen:
            del rdy[:]
            hr = 0
        elif hr > 32:
            del rdy[:hr]
            hr = 0
    return picked, hr


@st.composite
def issue_scenarios(draw):
    n = draw(st.integers(min_value=1, max_value=120))
    codes = draw(st.lists(st.sampled_from(CODES), min_size=n, max_size=n))
    # per-cycle arrival batches partition 0..n-1 in ascending order
    # (dispatch order); wake-ups out of seq order are injected below.
    arrivals = []
    seq = 0
    while seq < n:
        k = draw(st.integers(min_value=0, max_value=6))
        arrivals.append(list(range(seq, min(seq + k, n))))
        seq = min(seq + k, n) if k else seq
        if not k:
            arrivals.append([])
            if len(arrivals) > 4 * n + 8:
                break
    budgets = (draw(st.integers(min_value=1, max_value=3)),
               draw(st.integers(min_value=1, max_value=3)),
               draw(st.integers(min_value=1, max_value=2)),
               draw(st.integers(min_value=1, max_value=2)))
    width = draw(st.integers(min_value=1, max_value=6))
    return codes, arrivals, budgets, width


class TestIssueSelectOrder:
    @given(issue_scenarios(), st.randoms(use_true_random=False))
    @settings(max_examples=80, deadline=None)
    def test_queue_matches_scalar_oldest_first(self, scenario, rng):
        codes, arrivals, budgets, width = scenario
        from bisect import insort

        rdy = []
        hr = 0
        ready_set = set()
        deferred = []           # woken later, possibly below queue max
        for batch in arrivals:
            # wake a random stashed seq "out of order" (a consumer
            # whose producer just fired): insort above the head, which
            # must keep the live region sorted even when the dead
            # region below the head is not.
            if deferred and rng.random() < 0.5:
                seq = deferred.pop(rng.randrange(len(deferred)))
                insort(rdy, seq, hr)
                ready_set.add(seq)
            for seq in batch:
                if rng.random() < 0.3:
                    deferred.append(seq)    # not ready yet
                else:
                    rdy.append(seq)         # dispatch-ready: append
                    ready_set.add(seq)
            wlimit = (min(ready_set) + rng.randrange(0, 64)
                      if ready_set and rng.random() < 0.3 else 1 << 60)
            expect = _scalar_select(ready_set, codes, budgets, width,
                                    wlimit)
            got, hr = _queue_select(rdy, hr, codes, budgets, width,
                                    wlimit)
            assert got == expect, (
                "queue discipline diverged from the oldest-first "
                f"scalar scan: {got} != {expect}")
            ready_set.difference_update(got)
        # wake every deferred seq and drain with unbounded budgets:
        # every survivor must come out oldest-first, width at a time.
        for seq in deferred:
            insort(rdy, seq, hr)
            ready_set.add(seq)
        while ready_set:
            expect = sorted(ready_set)[:9]
            got, hr = _queue_select(rdy, hr, codes, (9, 9, 9, 9), 9,
                                    1 << 60)
            assert got == expect
            ready_set.difference_update(got)
