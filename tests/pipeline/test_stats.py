"""Unit tests for SimStats and the stall taxonomy helpers."""

import pytest

from repro.pipeline.stats import SimStats, StallCategory


def make_stats(**breakdown):
    stats = SimStats(model="m", workload="w")
    for name, cycles in breakdown.items():
        stats.charge(StallCategory[name.upper()], cycles)
    return stats


def test_charge_accumulates():
    stats = make_stats(execution=10, load=5)
    assert stats.cycles == 15
    assert stats.cycle_breakdown[StallCategory.LOAD] == 5
    assert stats.stall_cycles == 5
    assert stats.load_stall_cycles == 5


def test_ipc():
    stats = make_stats(execution=20)
    stats.instructions = 40
    assert stats.ipc == pytest.approx(2.0)
    empty = SimStats(model="m", workload="w")
    assert empty.ipc == 0.0


def test_normalized_breakdown():
    stats = make_stats(execution=30, other=10, load=60)
    norm = stats.normalized_breakdown(200)
    assert norm[StallCategory.EXECUTION] == pytest.approx(0.15)
    assert norm[StallCategory.LOAD] == pytest.approx(0.30)
    with pytest.raises(ValueError):
        stats.normalized_breakdown(0)


def test_speedup_over():
    fast = make_stats(execution=50)
    slow = make_stats(execution=100)
    assert fast.speedup_over(slow) == pytest.approx(2.0)
    empty = SimStats(model="m", workload="w")
    with pytest.raises(ValueError):
        empty.speedup_over(slow)


def test_summary_lists_all_categories():
    stats = make_stats(execution=1, front_end=2, other=3, load=4)
    text = stats.summary()
    for category in StallCategory:
        assert category.value in text


def test_counters_default_zero():
    stats = SimStats(model="m", workload="w")
    assert stats.counters["anything"] == 0   # Counter semantics
