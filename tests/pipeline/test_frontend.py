"""Tests for the shared front-end model and machine configuration."""

import pytest

from repro.branch import GsharePredictor
from repro.isa import P, R
from repro.machine import MachineConfig, itanium2_like
from repro.memory import base_hierarchy, config2_hierarchy
from repro.pipeline.frontend import FrontEnd
from tests.conftest import build_trace


def straight_line_trace(n=40):
    def body(b):
        for i in range(n):
            b.movi(R(1 + (i % 8)), i)
        b.halt()
    return build_trace(body)


def make_frontend(trace, config=None, buffer_size=24):
    config = config or MachineConfig()
    hierarchy = config.hierarchy.build()
    predictor = GsharePredictor(config.branch_predictor_entries)
    return FrontEnd(trace, hierarchy, predictor, config, buffer_size)


class TestFrontEnd:
    def test_fetches_up_to_width(self):
        trace = straight_line_trace()
        fe = make_frontend(trace)
        fe.tick(0, 0)
        assert fe.fetched_until == MachineConfig().fetch_width

    def test_respects_buffer_bound(self):
        trace = straight_line_trace()
        fe = make_frontend(trace, buffer_size=10)
        for cycle in range(20):
            fe.tick(cycle, 0)
        assert fe.fetched_until == 10

    def test_advances_with_consumption(self):
        trace = straight_line_trace()
        fe = make_frontend(trace, buffer_size=10)
        for cycle in range(5):
            fe.tick(cycle, 0)
        fe.tick(5, 8)   # consumer caught up
        assert fe.fetched_until > 10

    def test_never_fetches_past_trace_end(self):
        trace = straight_line_trace(5)
        fe = make_frontend(trace)
        for cycle in range(10):
            fe.tick(cycle, cycle)
        assert fe.fetched_until == len(trace)

    def test_redirect_rolls_back_and_stalls(self):
        trace = straight_line_trace()
        fe = make_frontend(trace)
        for cycle in range(4):
            fe.tick(cycle, 0)
        fetched = fe.fetched_until
        fe.redirect(resume_index=3, now=10)
        assert fe.fetched_until == 3 < fetched
        assert fe.stall_until == 10 + MachineConfig().mispredict_penalty
        assert fe.redirects == 1

    def test_prewarm_covers_static_code(self):
        trace = straight_line_trace()
        fe = make_frontend(trace)
        config = MachineConfig()
        for inst in trace.program:
            addr = inst.index * config.instruction_bytes
            assert fe.hierarchy.l1i.probe(addr)

    def test_prewarm_can_be_disabled(self):
        trace = straight_line_trace()
        fe = make_frontend(trace, MachineConfig(prewarm_icache=False))
        assert fe.hierarchy.l1i.accesses == 0
        assert not fe.hierarchy.l1i.probe(0)

    def test_nullified_branch_trains_not_taken(self):
        def body(b):
            b.movi(R(1), 1)
            b.cmpeqi(P(1), R(1), 0)      # false
            b.br("skip", pred=P(1))      # nullified every time
            b.movi(R(2), 2)
            b.label("skip")
            b.halt()

        trace = build_trace(body)
        fe = make_frontend(trace)
        branch = next(e for e in trace.entries if e.is_branch)
        for _ in range(8):
            fe.resolve_branch(branch, now=0)
        assert fe.predictor.predict(branch.inst.index) is False

    def test_already_resolved_branch_is_free(self):
        trace = straight_line_trace()
        fe = make_frontend(trace)
        entry = trace.entries[0]
        assert fe.resolve_branch(entry, 0, already_resolved=True) is False
        assert fe.predictor.predictions == 0


class TestMachineConfig:
    def test_table2_defaults(self):
        config = itanium2_like()
        assert config.ports.width == 6
        assert config.branch_predictor_entries == 1024
        assert config.multipass_queue_size == 256
        assert config.ooo_window == 128
        assert config.ooo_rob == 256
        assert config.ooo_extra_stages == 3
        assert config.hierarchy.max_outstanding_misses == 16
        assert config.asc_entries == 64 and config.asc_assoc == 2
        assert config.smaq_entries == 128

    def test_with_hierarchy(self):
        config = itanium2_like().with_hierarchy(config2_hierarchy())
        assert config.hierarchy.name == "config2"
        assert "config2" in config.name
        # Original untouched (frozen dataclass semantics).
        assert itanium2_like().hierarchy.name == "base"

    def test_frozen(self):
        with pytest.raises(Exception):
            itanium2_like().fetch_width = 8
