"""Tests for the Wattch-style power models and Table 1 ratios."""

import pytest

from repro.compiler import CompileOptions
from repro.isa import P, R
from repro.multipass import simulate_multipass
from repro.ooo import simulate_ooo
from repro.power import (ArrayStructure, CamStructure, MatrixStructure,
                         PAPER_PEAK_RATIOS, TechParams, average_ratios,
                         multipass_power, ooo_power, table1_groups)
from tests.conftest import build_trace


class TestComponentModels:
    def test_array_energy_scales_with_ports(self):
        few = ArrayStructure("a", 128, 32, read_ports=2, write_ports=1)
        many = ArrayStructure("b", 128, 32, read_ports=8, write_ports=4)
        assert many.energy_per_access() > few.energy_per_access()

    def test_array_energy_scales_with_size(self):
        small = ArrayStructure("a", 64, 32)
        big = ArrayStructure("b", 1024, 32)
        assert big.energy_per_access() > small.energy_per_access()

    def test_banking_reduces_access_energy(self):
        flat = ArrayStructure("a", 256, 41, wide_read_ports=1,
                              wide_write_ports=1, banks=1)
        banked = ArrayStructure("b", 256, 41, wide_read_ports=1,
                                wide_write_ports=1, banks=2)
        assert banked.energy_per_access(wide=True) < \
            flat.energy_per_access(wide=True)

    def test_wide_access_costs_more_than_narrow(self):
        rs = ArrayStructure("rs", 256, 33, write_ports=2,
                            wide_read_ports=1, wide_write_ports=1)
        assert rs.energy_per_access(wide=True) > rs.energy_per_access()

    def test_cam_search_far_exceeds_array_read(self):
        """The paper's central claim: CAMs cost far more than arrays."""
        cam = CamStructure("cam", 48, tag_bits=32, search_ports=2,
                           write_ports=2)
        array = ArrayStructure("arr", 48, 32, read_ports=2, write_ports=2)
        assert cam.search_energy() > 3 * array.energy_per_access()

    def test_matrix_wakeup_is_cheap(self):
        matrix = MatrixStructure("wakeup", 128, 329)
        cam = CamStructure("cam", 128, tag_bits=8)
        assert matrix.evaluate_energy() < cam.search_energy()

    def test_peak_power_positive(self):
        for group in table1_groups().values():
            for s in group.ooo + group.multipass:
                assert s.peak_power() > 0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            ArrayStructure("bad", 0, 32)
        with pytest.raises(ValueError):
            CamStructure("bad", 16, 0)


class TestTable1PeakRatios:
    """Measured ratios must land in the paper's regime (shape, not digits)."""

    def test_register_structures_comparable(self):
        ratio = table1_groups()["registers"].peak_ratio()
        assert 0.8 <= ratio <= 1.5, ratio
        assert ratio == pytest.approx(PAPER_PEAK_RATIOS["registers"],
                                      rel=0.25)

    def test_scheduling_order_of_magnitude(self):
        ratio = table1_groups()["scheduling"].peak_ratio()
        assert 7.0 <= ratio <= 14.0, ratio
        assert ratio == pytest.approx(PAPER_PEAK_RATIOS["scheduling"],
                                      rel=0.25)

    def test_memory_ordering_ratio(self):
        ratio = table1_groups()["memory-ordering"].peak_ratio()
        assert 2.0 <= ratio <= 5.0, ratio
        assert ratio == pytest.approx(
            PAPER_PEAK_RATIOS["memory-ordering"], rel=0.25)


def memory_heavy_kernel(b):
    b.movi(R(1), 0x100000)
    b.movi(R(30), 60)
    b.label("loop")
    b.ld(R(2), R(1), 0)
    b.add(R(3), R(2), R(3))
    b.st(R(3), R(1), 4)
    b.addi(R(1), R(1), 4096)
    b.subi(R(30), R(30), 1)
    b.cmplti(P(1), R(30), 1)
    b.cmpeqi(P(2), P(1), 0)
    b.br("loop", pred=P(2))
    b.halt()


class TestAveragePower:
    @pytest.fixture(scope="class")
    def runs(self):
        trace = build_trace(memory_heavy_kernel,
                            compile_opts=CompileOptions(restarts=False))
        return trace, simulate_multipass(trace), simulate_ooo(trace)

    def test_breakdowns_positive(self, runs):
        trace, mp, ooo = runs
        mp_bd = multipass_power(mp, trace)
        ooo_bd = ooo_power(ooo, trace)
        assert all(w > 0 for w in mp_bd.watts.values())
        assert all(w > 0 for w in ooo_bd.watts.values())

    def test_average_below_peak(self, runs):
        trace, mp, ooo = runs
        groups = table1_groups()
        mp_bd = multipass_power(mp, trace)
        mp_peak = sum(s.peak_power()
                      for g in groups.values() for s in g.multipass)
        assert mp_bd.total() < mp_peak

    def test_ooo_wins_no_average_row(self, runs):
        """Every Table 1 row has average ratio > 1 (OOO costs more)."""
        trace, mp, ooo = runs
        ratios = average_ratios(ooo_power(ooo, trace),
                                multipass_power(mp, trace))
        for row, ratio in ratios.items():
            assert ratio > 1.0, (row, ratio)

    def test_scheduling_row_strongly_favors_multipass(self, runs):
        trace, mp, ooo = runs
        ratios = average_ratios(ooo_power(ooo, trace),
                                multipass_power(mp, trace))
        assert ratios["scheduling"] > 3.0
