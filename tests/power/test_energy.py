"""Tests for the execution-energy accounting."""

import pytest

from repro.compiler import CompileOptions
from repro.harness import run_model
from repro.isa.opcodes import FUClass
from repro.power import (DEFAULT_EVENT_ENERGY, energy_comparison,
                         execution_energy)
from tests.conftest import build_trace
from tests.multipass.test_core import persistence_kernel

NO_REORDER = CompileOptions(reorder=False, restarts=False)


@pytest.fixture(scope="module")
def runs():
    trace = build_trace(persistence_kernel, compile_opts=NO_REORDER)
    return trace, {m: run_model(m, trace)
                   for m in ("inorder", "multipass", "runahead", "ooo")}


def test_inorder_executes_exactly_once(runs):
    trace, models = runs
    result = execution_energy(models["inorder"], trace)
    assert result.redundancy == pytest.approx(1.0)
    assert result.fu_events == pytest.approx(len(trace))


def test_runahead_pays_for_reexecution(runs):
    trace, models = runs
    ra = execution_energy(models["runahead"], trace)
    mp = execution_energy(models["multipass"], trace)
    # The persistence kernel pre-executes a long multiply chain: runahead
    # runs it twice, multipass merges it.
    assert ra.redundancy > 1.15
    assert mp.redundancy < ra.redundancy
    assert mp.redundancy == pytest.approx(1.0, abs=0.1)


def test_energy_positive_and_ordered(runs):
    trace, models = runs
    for stats in models.values():
        result = execution_energy(stats, trace)
        assert result.energy_joules > 0
        assert set(result.by_class) == set(FUClass)


def test_comparison_normalizes_baseline(runs):
    trace, models = runs
    ratios = energy_comparison(models, trace)
    assert ratios["inorder"] == pytest.approx(1.0)
    assert ratios["runahead"] > ratios["multipass"]


def test_custom_event_energy(runs):
    trace, models = runs
    expensive_fp = dict(DEFAULT_EVENT_ENERGY)
    expensive_fp[FUClass.MULDIV] *= 100   # the kernel is multiply-heavy
    cheap = execution_energy(models["inorder"], trace)
    costly = execution_energy(models["inorder"], trace,
                              event_energy=expensive_fp)
    assert costly.energy_joules > cheap.energy_joules
