"""Table 1: power ratios of out-of-order to multipass structures.

Peak ratios come from the Wattch-style structure models at maximum
switching activity; average ratios additionally weight by simulated
activity with linear clock gating (multipass structures are gated off in
architectural mode).  Paper values: registers 0.99 / 1.20, scheduling
10.28 / 7.15, memory-ordering 3.21 / 9.79.
"""

from conftest import run_once

from repro.harness import table1
from repro.power import PAPER_PEAK_RATIOS


def test_table1(benchmark, trace_cache, scale):
    result = run_once(benchmark, table1, scale=scale, cache=trace_cache)
    print()
    print(result.text)
    peak = result.data["peak"]
    average = result.data["average"]
    # Peak ratios land in the paper's regime.
    assert peak["registers"] == \
        __import__("pytest").approx(PAPER_PEAK_RATIOS["registers"],
                                    rel=0.25)
    assert 7.0 < peak["scheduling"] < 14.0
    assert 2.0 < peak["memory-ordering"] < 5.0
    # Average ratios all favour multipass (ratio > 1).
    for name, ratio in average.items():
        assert ratio > 1.0, name
