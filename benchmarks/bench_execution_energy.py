"""Execution-energy comparison (paper Sections 2 and 3.1.2).

The paper argues that runahead "consume[s] execution energy multiple
times" for the same instruction, while multipass result persistence means
"the pipeline does not have to spend the energy to execute an instruction
whose results are available from prior advance-mode execution".  This
bench counts functional-unit activations per model and prices them.
"""

from conftest import run_once

from repro.harness import geomean, run_model
from repro.power import energy_comparison

WORKLOADS = ("mcf", "bzip2", "gap", "gzip", "equake", "art", "ammp")
MODELS = ("inorder", "multipass", "runahead", "ooo")


def test_execution_energy(benchmark, trace_cache, scale):
    def sweep():
        rows = {}
        for workload in WORKLOADS:
            trace = trace_cache.trace(workload)
            runs = {m: run_model(m, trace) for m in MODELS}
            rows[workload] = energy_comparison(runs, trace)
        return rows

    rows = run_once(benchmark, sweep)
    print("\nexecution-energy overhead vs in-order "
          "(1.00 = each instruction executes once):")
    print(f"{'workload':>9}" + "".join(f"{m:>11}" for m in MODELS))
    for workload, cells in rows.items():
        print(f"{workload:>9}" + "".join(
            f"{cells[m]:11.3f}" for m in MODELS))
    means = {m: geomean(rows[w][m] for w in rows) for m in MODELS}
    print(f"{'geomean':>9}" + "".join(f"{means[m]:11.3f}" for m in MODELS))

    # Multipass persistence keeps execution energy near execute-once;
    # runahead re-executes everything it pre-executed.
    assert means["multipass"] < means["runahead"] * 0.9
    assert means["multipass"] < 1.25
    assert means["runahead"] > 1.2
