"""Shared benchmark configuration.

Benchmarks regenerate the paper's tables and figures at full workload
scale by default; set ``REPRO_SCALE`` (e.g. ``REPRO_SCALE=0.2``) for a
quick pass.  Figure benches run the whole experiment once inside
``benchmark.pedantic`` and print the regenerated rows next to the paper's
reported values.
"""

import os

import pytest

from repro.harness import TraceCache

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))


@pytest.fixture(scope="session")
def scale():
    return SCALE


@pytest.fixture(scope="session")
def trace_cache():
    """One functional execution per workload, shared by all benches."""
    return TraceCache(SCALE)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a whole-figure computation exactly once under the timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)
