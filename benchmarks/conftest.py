"""Shared benchmark configuration.

Benchmarks regenerate the paper's tables and figures at full workload
scale by default; set ``REPRO_SCALE`` (e.g. ``REPRO_SCALE=0.2``) for a
quick pass.  Figure benches run the whole experiment once inside
``benchmark.pedantic`` and print the regenerated rows next to the paper's
reported values.

The parallel experiment engine and the persistent result cache are
wired through the same environment knobs the harness itself resolves:
``REPRO_JOBS=4`` (or ``auto``) fans every figure's cell grid over a
worker pool, and ``REPRO_RESULTS_CACHE=/path`` serves unchanged cells
from disk — a warm second benchmark run regenerates every table with
zero simulations.  Both default off, so timings are comparable to
historical runs unless explicitly opted in.
"""

import os

import pytest

from repro.harness import TraceCache, resolve_jobs, resolve_results_cache

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))

#: Resolved $REPRO_JOBS worker count (1 = serial, the default).
JOBS = resolve_jobs(None)


@pytest.fixture(scope="session")
def scale():
    return SCALE


@pytest.fixture(scope="session")
def jobs():
    """Worker count the engine resolves from $REPRO_JOBS."""
    return JOBS


@pytest.fixture(scope="session")
def results_cache():
    """The $REPRO_RESULTS_CACHE-backed store, or None when disabled."""
    return resolve_results_cache(None)


@pytest.fixture(scope="session")
def trace_cache():
    """One functional execution per workload, shared by all benches."""
    return TraceCache(SCALE)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a whole-figure computation exactly once under the timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)
