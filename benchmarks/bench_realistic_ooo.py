"""Section 5.2: multipass vs a realistic out-of-order implementation.

The realistic model uses three decentralized 16-entry scheduling queues
(memory / integer / floating point), a speculative-wakeup bubble and
conventional handling of predicated code.  The paper reports multipass
achieving a 1.05x speedup over this model while keeping its power
advantages.
"""

from conftest import run_once

from repro.harness import realistic_ooo_comparison


def test_realistic_ooo(benchmark, trace_cache, scale):
    result = run_once(benchmark, realistic_ooo_comparison, scale=scale,
                      cache=trace_cache)
    print()
    print(result.text)
    ratio = result.data["mp_over_realistic"]
    # Paper: 1.05.  The models should be close, with multipass not
    # clearly losing (shape: near parity, far below the ideal-OOO gap).
    assert 0.85 < ratio < 1.4
