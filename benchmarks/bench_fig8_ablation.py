"""Figure 8: multipass without issue regrouping / without advance restart.

The paper reports that instruction regrouping contributes a considerable
share of the speedup on every benchmark except mcf, while advance restart
matters specifically for bzip2, gap and mcf (the benchmarks with chained
misses feeding critical strongly-connected components).
"""

from conftest import run_once

from repro.harness import figure8

RESTART_BENCHMARKS = ("bzip2", "gap", "mcf")


def test_figure8(benchmark, trace_cache, scale):
    result = run_once(benchmark, figure8, scale=scale, cache=trace_cache)
    print()
    print(result.text)
    per_workload = result.data["per_workload"]
    # The calibrated footprints (and hence miss behaviour) only hold at
    # full workload scale; quick passes skip the shape assertions.
    if scale >= 0.75:
        # Restart must matter exactly where the paper says it does.
        for workload in RESTART_BENCHMARKS:
            assert per_workload[workload]["norestart_retained"] < 0.90, \
                workload
        for workload, row in per_workload.items():
            if workload in RESTART_BENCHMARKS:
                continue
            assert row["norestart_retained"] > 0.90, workload
    # Regrouping contributes broadly (dropping it loses speedup somewhere).
    assert any(row["noregroup_retained"] < 0.95
               for row in per_workload.values())
