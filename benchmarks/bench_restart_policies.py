"""Extension bench: restart policies and the two-pass predecessor.

The paper uses compiler-inserted RESTART directives (Section 3.3) but
notes in footnote 1 that "a hardware mechanism could also have been used
to detect these situations", and compares against its own two-pass
predecessor [2] which preserved results but could not restart.  This
bench races all four policies:

* ``none``     — multipass with restart disabled,
* ``twopass``  — the MICRO-36 predecessor (same timing as ``none``; the
  replicated-pipeline cost shows in power, not cycles),
* ``hardware`` — the footnote-1 fruitfulness detector,
* ``compiler`` — the paper's SCC-criticality RESTART insertion.
"""

from conftest import run_once

from repro.compiler import CompileOptions
from repro.harness import TraceCache, geomean, run_model

WORKLOADS = ("mcf", "bzip2", "gap", "gzip", "equake", "art")


def test_restart_policies(benchmark, scale):
    def sweep():
        # Hardware/none variants run on a trace compiled WITHOUT RESTART
        # directives, isolating the microarchitectural mechanism.
        plain_cache = TraceCache(
            scale, compile_options=CompileOptions(restarts=False))
        compiler_cache = TraceCache(scale)
        rows = {}
        for workload in WORKLOADS:
            plain = plain_cache.trace(workload)
            directed = compiler_cache.trace(workload)
            base = run_model("inorder", plain).cycles
            base_directed = run_model("inorder", directed).cycles
            rows[workload] = {
                "none": base / run_model("multipass-norestart",
                                         plain).cycles,
                "twopass": base / run_model("twopass", plain).cycles,
                "hardware": base / run_model("multipass-hwrestart",
                                             plain).cycles,
                "compiler": base_directed / run_model("multipass",
                                                      directed).cycles,
            }
        return rows

    rows = run_once(benchmark, sweep)
    policies = ("none", "twopass", "hardware", "compiler")
    print("\nspeedup over in-order by restart policy:")
    print(f"{'workload':>9}" + "".join(f"{p:>10}" for p in policies))
    for workload, cells in rows.items():
        print(f"{workload:>9}" + "".join(
            f"{cells[p]:10.2f}" for p in policies))
    means = {p: geomean(rows[w][p] for w in rows) for p in policies}
    print(f"{'geomean':>9}" + "".join(
        f"{means[p]:10.3f}" for p in policies))

    # Two-pass behaves like restart-less multipass in cycles.
    for workload, cells in rows.items():
        assert abs(cells["twopass"] - cells["none"]) < 0.05, workload
    # The hardware detector never costs (it only fires on fruitless
    # passes with a known rendezvous).
    assert means["hardware"] >= means["none"] * 0.98
    if scale >= 0.75:
        # At calibrated scale the compiler's targeted placement pays off
        # on the chained-miss benchmarks (see Fig. 8); tiny scales shrink
        # the footprints and with them the restart opportunity.
        assert means["compiler"] >= means["none"] * 0.95
