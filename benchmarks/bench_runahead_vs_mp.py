"""Section 5.4: Dundas–Mudge runahead vs multipass.

"Dundas-Mudge runahead was simulated separately ... but only reduced half
as many cycles as multipass relative to in-order."
"""

from conftest import run_once

from repro.harness import runahead_comparison


def test_runahead_vs_multipass(benchmark, trace_cache, scale):
    result = run_once(benchmark, runahead_comparison, scale=scale,
                      cache=trace_cache)
    print()
    print(result.text)
    # Runahead helps, but clearly less than multipass.
    assert 0.0 < result.data["ra_reduction"] < result.data["mp_reduction"]
    assert result.data["ratio"] < 0.85
