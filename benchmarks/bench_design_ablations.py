"""Ablations of the design choices called out in DESIGN.md.

Beyond the paper's own Fig. 8 ablations, these sweep the structures whose
sizes Table 2 fixes — the multipass instruction queue, the advance store
cache, the MSHR file — and toggle the Section 3.5 WAW rule, quantifying
how much each choice contributes on a memory-bound workload.
"""

from dataclasses import replace

from conftest import run_once

from repro.harness import TraceCache
from repro.machine import MachineConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.multipass import MultipassCore
from repro.pipeline import InOrderCore

WORKLOAD = "mcf"
SCALE = 0.3


def _trace():
    return TraceCache(SCALE).trace(WORKLOAD)


def test_instruction_queue_size_sweep(benchmark):
    """Table 2 fixes a 256-entry IQ; how much window does mcf need?"""
    trace = _trace()

    def sweep():
        rows = {}
        for size in (32, 64, 128, 256, 512):
            config = MachineConfig(multipass_queue_size=size)
            rows[size] = MultipassCore(trace, config).run().cycles
        return rows

    rows = run_once(benchmark, sweep)
    print("\nmultipass IQ size sweep (mcf cycles):")
    for size, cycles in rows.items():
        print(f"  IQ={size:>4}: {cycles}")
    assert rows[256] <= rows[32]   # a larger window never hurts mcf


def test_asc_size_sweep(benchmark):
    """The 64-entry 2-way ASC vs smaller/larger forwarding caches."""
    trace = _trace()

    def sweep():
        rows = {}
        for entries in (8, 64, 256):
            config = MachineConfig(asc_entries=entries)
            stats = MultipassCore(trace, config).run()
            rows[entries] = (stats.cycles,
                             stats.counters.get("sbit_loads", 0))
        return rows

    rows = run_once(benchmark, sweep)
    print("\nASC size sweep (mcf cycles, data-speculative loads):")
    for entries, (cycles, sbits) in rows.items():
        print(f"  ASC={entries:>4}: {cycles} cycles, {sbits} S-bit loads")
    # Smaller ASCs replace more -> at least as many data-speculative loads.
    assert rows[8][1] >= rows[256][1]


def test_mshr_sweep(benchmark):
    """Outstanding-miss limit: the cap on every model's achievable MLP."""
    trace = _trace()

    def sweep():
        rows = {}
        for mshrs in (2, 8, 16, 64):
            base = MachineConfig()
            hierarchy = HierarchyConfig(
                name=f"mshr{mshrs}", l1i=base.hierarchy.l1i,
                l1d=base.hierarchy.l1d, l2=base.hierarchy.l2,
                l3=base.hierarchy.l3,
                memory_latency=base.hierarchy.memory_latency,
                max_outstanding_misses=mshrs)
            config = replace(base, hierarchy=hierarchy)
            rows[mshrs] = {
                "inorder": InOrderCore(trace, config).run().cycles,
                "multipass": MultipassCore(trace, config).run().cycles,
            }
        return rows

    rows = run_once(benchmark, sweep)
    print("\nMSHR sweep (mcf cycles):")
    for mshrs, cells in rows.items():
        print(f"  MSHRs={mshrs:>3}: inorder={cells['inorder']} "
              f"multipass={cells['multipass']}")
    # Multipass needs MLP: it benefits more from MSHRs than in-order does.
    mp_gain = rows[2]["multipass"] / rows[64]["multipass"]
    base_gain = rows[2]["inorder"] / rows[64]["inorder"]
    assert mp_gain > base_gain


def test_waw_rule_ablation(benchmark):
    """Section 3.5: suppressing SRF writes of L1-missing advance loads."""
    trace = _trace()

    def run():
        paper = MultipassCore(trace).run()
        alt = MultipassCore(trace, l1_miss_writes_srf=True).run()
        return paper, alt

    paper, alt = run_once(benchmark, run)
    print(f"\nWAW rule (paper, defer consumers): {paper.cycles} cycles")
    print(f"alternative (SRF write + wait):    {alt.cycles} cycles")
    # Both are valid designs; they must at least both complete correctly
    # and remain in the same performance regime.
    assert paper.instructions == alt.instructions
    assert 0.5 < paper.cycles / alt.cycles < 2.0
