"""Simulator-component microbenchmarks.

These time the substrates themselves (cache model, branch predictor,
functional execution, each pipeline core) so performance regressions in
the simulator are visible independently of the paper's figures.
"""

import pytest

from repro.branch import GsharePredictor
from repro.harness import run_model
from repro.memory import base_hierarchy
from repro.isa import execute
from repro.compiler import compile_program
from repro.workloads import build_workload

_COMPONENT_SCALE = 0.1


@pytest.fixture(scope="module")
def small_trace():
    program = compile_program(build_workload("gzip", _COMPONENT_SCALE))
    return execute(program)


def test_cache_hierarchy_access(benchmark):
    hierarchy = base_hierarchy().build()
    addresses = [(i * 4096 + (i % 13) * 64) % (1 << 22) for i in range(512)]

    def run():
        now = 0
        for addr in addresses:
            now = hierarchy.access(addr, now).ready
        return now

    benchmark(run)


def test_gshare_updates(benchmark):
    predictor = GsharePredictor()
    outcomes = [(i * 7919) % 97 < 48 for i in range(2048)]

    def run():
        for i, taken in enumerate(outcomes):
            predictor.update(i & 255, taken)

    benchmark(run)


def test_functional_execution(benchmark):
    program = compile_program(build_workload("crafty", _COMPONENT_SCALE))
    benchmark(execute, program)


@pytest.mark.parametrize("model", ["inorder", "multipass", "runahead",
                                   "ooo", "ooo-realistic"])
def test_core_simulation_speed(benchmark, small_trace, model):
    stats = benchmark(run_model, model, small_trace)
    assert stats.instructions == len(small_trace)
