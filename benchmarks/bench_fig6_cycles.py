"""Figure 6: normalized execution cycles for base / multipass / OOO.

Regenerates the stacked stall-breakdown bars (execution / front-end /
other / load) for all twelve benchmarks and the Section 5.2 headline
aggregates: multipass achieves a 1.36x average speedup (49% of total
stall cycles removed) and ideal OOO is only 1.14x faster than multipass.
"""

from conftest import run_once

from repro.harness import figure6


def test_figure6(benchmark, trace_cache, scale):
    result = run_once(benchmark, figure6, scale=scale, cache=trace_cache)
    print()
    print(result.text)
    data = result.data
    # Shape assertions: multipass sits between in-order and ideal OOO.
    assert data["mp_speedup_geomean"] > 1.15
    assert data["ooo_over_mp"] > 1.0
    matrix = data["matrix"]
    for workload in matrix.workloads():
        assert matrix.speedup(workload, "multipass") >= 0.95
        assert matrix.get(workload, "ooo").cycles <= \
            matrix.get(workload, "multipass").cycles * 1.05


def test_figure6_mcf_memory_stalls(benchmark, trace_cache, scale):
    """The paper's mcf callout: a large memory-stall reduction."""
    from repro.harness import run_model
    from repro.pipeline import StallCategory

    def compute():
        trace = trace_cache.trace("mcf")
        base = run_model("inorder", trace)
        mp = run_model("multipass", trace)
        return base, mp

    base, mp = run_once(benchmark, compute)
    reduction = 1 - mp.cycle_breakdown[StallCategory.LOAD] \
        / base.cycle_breakdown[StallCategory.LOAD]
    print(f"\nmcf memory-stall reduction under multipass: {reduction:.1%} "
          f"[paper: 56%]")
    assert reduction > 0.35
