"""Figure 7: speedups under the three cache hierarchies.

``base`` is Table 2's contemporary hierarchy; ``config1`` raises main
memory to 200 cycles; ``config2`` additionally shrinks and slows every
cache level (8 KB L1 / 128 KB 7-cycle L2 / 1.5 MB 16-cycle L3).  The paper
reports that average latency-tolerance effectiveness stays roughly flat
while the multipass-vs-OOO gap narrows under the restrictive hierarchies.
"""

from conftest import run_once

from repro.harness import figure7


def test_figure7(benchmark, scale):
    result = run_once(benchmark, figure7, scale=scale)
    print()
    print(result.text)
    means = result.data["means"]
    gaps = result.data["gaps"]
    # Both techniques keep tolerating latency under every hierarchy.
    for name in ("base", "config1", "config2"):
        assert means[name]["multipass"] > 1.1
        assert means[name]["ooo"] >= means[name]["multipass"]
    # Paper: the OOO/MP gap narrows with the more restrictive hierarchy.
    if scale >= 0.75:
        assert gaps["config2"] <= gaps["base"] * 1.05
