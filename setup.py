"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``.  This file exists so the
package can be installed in environments without the ``wheel`` package
(where PEP 660 editable installs fail): ``python setup.py develop``.
"""

from setuptools import setup

setup()
